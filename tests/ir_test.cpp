// Unit tests for PrivIR construction, the verifier, and the call graph.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/callgraph.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace pa::ir {
namespace {

using B = IRBuilder;
using caps::Capability;

TEST(BuilderTest, SimpleFunctionVerifies) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  int x = b.mov(B::i(5));
  int y = b.add(B::r(x), B::i(1));
  b.ret(B::r(y));
  b.end_function();
  EXPECT_TRUE(verify(m).empty());
  EXPECT_EQ(m.function("main").num_registers(), 2);
}

TEST(BuilderTest, BranchesResolveLabels) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 1);
  int c = b.cmpeq(B::r(0), B::i(0));
  b.condbr(B::r(c), "yes", "no");
  b.at("yes");
  b.ret(B::i(1));
  b.at("no");
  b.ret(B::i(0));
  b.end_function();
  ASSERT_TRUE(verify(m).empty());
  const Function& f = m.function("main");
  auto succs = f.block(0).successors();
  EXPECT_EQ(succs, (std::vector<int>{1, 2}));
}

TEST(BuilderTest, UnknownLabelThrows) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.br("nowhere");
  EXPECT_THROW(b.end_function(), Error);
}

TEST(BuilderTest, AppendAfterTerminatorThrows) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.ret(B::i(0));
  EXPECT_THROW(b.nop(), Error);
}

TEST(BuilderTest, DuplicateFunctionThrows) {
  Module m("t");
  m.add_function("f", 0);
  EXPECT_THROW(m.add_function("f", 0), Error);
}

TEST(VerifierTest, CatchesMissingTerminator) {
  Module m("t");
  Function& f = m.add_function("main", 0);
  f.add_block("entry");
  f.block(0).instructions.push_back({.op = Opcode::Nop});
  auto problems = verify(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, CatchesEmptyBlockAndFunction) {
  Module m("t");
  Function& f = m.add_function("main", 0);
  f.add_block("entry");
  EXPECT_FALSE(verify(m).empty());

  Module m2("t2");
  m2.add_function("empty_fn", 0);
  EXPECT_FALSE(verify(m2).empty());
}

TEST(VerifierTest, CatchesCallToUnknownFunction) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.call("ghost");
  b.ret(B::i(0));
  b.end_function();
  auto problems = verify(m);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("ghost"), std::string::npos);
}

TEST(VerifierTest, CatchesMidBlockTerminator) {
  Module m("t");
  Function& f = m.add_function("main", 0);
  f.add_block("entry");
  f.block(0).instructions.push_back(
      {.op = Opcode::Ret, .operands = {Operand::imm(0)}});
  f.block(0).instructions.push_back(
      {.op = Opcode::Ret, .operands = {Operand::imm(0)}});
  EXPECT_FALSE(verify(m).empty());
}

TEST(VerifierTest, CatchesBadPrivOperand) {
  Module m("t");
  Function& f = m.add_function("main", 0);
  f.add_block("entry");
  f.block(0).instructions.push_back(
      {.op = Opcode::PrivRaise, .operands = {Operand::imm(7)}});
  f.block(0).instructions.push_back(
      {.op = Opcode::Ret, .operands = {Operand::imm(0)}});
  EXPECT_FALSE(verify(m).empty());
}

TEST(CountableTest, UnreachableExcluded) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.nop(3);
  b.unreachable();
  b.end_function();
  EXPECT_EQ(m.function("main").countable_instructions(), 3);
}

TEST(CallGraphTest, DirectEdges) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("leaf", 0);
  b.ret(B::i(0));
  b.end_function();
  b.begin_function("mid", 0);
  b.call("leaf");
  b.ret(B::i(0));
  b.end_function();
  b.begin_function("main", 0);
  b.call("mid");
  b.ret(B::i(0));
  b.end_function();

  CallGraph cg = CallGraph::build(m);
  EXPECT_TRUE(cg.callees("main").contains("mid"));
  EXPECT_TRUE(cg.reachable_from("main").contains("leaf"));
  EXPECT_FALSE(cg.reachable_from("mid").contains("main"));
}

TEST(CallGraphTest, IndirectCallsTargetAllAddressTaken) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("taken", 0);
  b.ret(B::i(0));
  b.end_function();
  b.begin_function("not_taken", 0);
  b.ret(B::i(0));
  b.end_function();
  b.begin_function("main", 0);
  int fp = b.funcaddr("taken");
  b.callind(B::r(fp));
  b.ret(B::i(0));
  b.end_function();
  m.recompute_address_taken();

  CallGraph cg = CallGraph::build(m);
  EXPECT_TRUE(cg.callees("main").contains("taken"));
  EXPECT_FALSE(cg.callees("main").contains("not_taken"));
  EXPECT_TRUE(cg.has_indirect_call("main"));
  EXPECT_EQ(cg.address_taken(), std::set<std::string>{"taken"});

  CallGraph none = CallGraph::build(m, IndirectCallPolicy::AssumeNone);
  EXPECT_FALSE(none.callees("main").contains("taken"));
}

TEST(CallGraphTest, SignalHandlersRecorded) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("handler", 1);
  b.ret(B::i(0));
  b.end_function();
  b.begin_function("main", 0);
  b.syscall("signal", {B::i(17), B::f("handler")});
  b.ret(B::i(0));
  b.end_function();

  CallGraph cg = CallGraph::build(m);
  EXPECT_EQ(cg.signal_handlers(), std::set<std::string>{"handler"});
}

}  // namespace
}  // namespace pa::ir
