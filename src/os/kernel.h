// The SimOS kernel: owns the VFS, the process table, and the network stack,
// and exposes the syscall layer with Linux errno semantics. Every access
// decision is delegated to os/access.h, the same library ROSA's transition
// rules use.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "os/filter.h"
#include "os/net.h"
#include "os/process.h"
#include "os/vfs.h"

namespace pa::os {

/// prctl(2) operations SimOS models.
enum class PrctlOp {
  SetSecurebitsStrict,  // disable all uid-transition capability fixups
};

class Kernel {
 public:
  Kernel() = default;

  // -- World construction ----------------------------------------------------
  Vfs& vfs() { return vfs_; }
  const Vfs& vfs() const { return vfs_; }
  NetStack& net() { return net_; }
  const NetStack& net() const { return net_; }

  /// Create a process launched with `permitted` capabilities available but
  /// none raised (the paper's launch configuration: correct permitted set
  /// instead of setuid-root).
  Pid spawn(std::string name, caps::Credentials creds, caps::CapSet permitted);

  Process& process(Pid pid);
  const Process& process(Pid pid) const;
  bool process_exists(Pid pid) const { return procs_.contains(pid); }
  std::optional<Pid> find_process(std::string_view name) const;

  /// The Actor (credentials + effective caps) access checks see for `pid`.
  Actor actor_for(Pid pid) const;

  // -- Privilege wrappers (libpriv, not raw syscalls) --------------------------
  /// priv_raise(3): enable caps in the effective set; EPERM if not permitted.
  SysResult priv_raise(Pid pid, caps::CapSet caps);
  /// priv_lower(3): disable caps in the effective set.
  SysResult priv_lower(Pid pid, caps::CapSet caps);
  /// priv_remove(3): drop caps from effective AND permitted (irreversible).
  SysResult priv_remove(Pid pid, caps::CapSet caps);

  // -- File syscalls -----------------------------------------------------------
  SysResult sys_open(Pid pid, std::string_view path, unsigned flags,
                     Mode create_mode = Mode(0644));
  SysResult sys_close(Pid pid, Fd fd);
  /// dup(2): clone a descriptor (shares nothing in this model beyond the
  /// inode/flags snapshot; offsets are per-descriptor, a documented
  /// simplification).
  SysResult sys_dup(Pid pid, Fd fd);
  /// access(2): permission probe using the REAL uid/gid, as Linux does.
  /// `mode` bits: 4 = read, 2 = write, 1 = execute; 0 = existence.
  SysResult sys_access(Pid pid, std::string_view path, int mode);
  /// umask(2): set the file-creation mask, returning the previous one.
  SysResult sys_umask(Pid pid, Mode mask);
  SysResult sys_read(Pid pid, Fd fd, std::string* out, std::size_t n);
  SysResult sys_write(Pid pid, Fd fd, std::string_view data);
  SysResult sys_chmod(Pid pid, std::string_view path, Mode mode);
  SysResult sys_fchmod(Pid pid, Fd fd, Mode mode);
  SysResult sys_chown(Pid pid, std::string_view path, int owner, int group);
  SysResult sys_fchown(Pid pid, Fd fd, int owner, int group);
  SysResult sys_unlink(Pid pid, std::string_view path);
  SysResult sys_rename(Pid pid, std::string_view from, std::string_view to);
  /// link(2): new name for an existing inode (nlink++).
  SysResult sys_link(Pid pid, std::string_view existing, std::string_view neu);
  /// creat(2) == open(O_CREAT|O_WRONLY|O_TRUNC).
  SysResult sys_creat(Pid pid, std::string_view path, Mode mode);
  SysResult sys_stat(Pid pid, std::string_view path, FileMeta* meta);
  SysResult sys_chroot(Pid pid, std::string_view path);

  // -- Credential syscalls -----------------------------------------------------
  SysResult sys_setuid(Pid pid, int uid);
  SysResult sys_seteuid(Pid pid, int uid);
  SysResult sys_setresuid(Pid pid, int r, int e, int s);
  SysResult sys_setgid(Pid pid, int gid);
  SysResult sys_setegid(Pid pid, int gid);
  SysResult sys_setresgid(Pid pid, int r, int e, int s);
  SysResult sys_setgroups(Pid pid, std::vector<caps::Gid> groups);
  SysResult sys_getuid(Pid pid) const;
  SysResult sys_geteuid(Pid pid) const;
  SysResult sys_getgid(Pid pid) const;

  // -- Signals ----------------------------------------------------------------
  /// Register `handler` (an IR function name) for `signo`.
  SysResult sys_signal(Pid pid, int signo, std::string handler);
  SysResult sys_kill(Pid pid, Pid target, int signo);

  // -- Sockets ----------------------------------------------------------------
  SysResult sys_socket(Pid pid, SockType type);
  SysResult sys_bind(Pid pid, Fd fd, int port);
  SysResult sys_connect(Pid pid, Fd fd, int port);
  /// SO_DEBUG / SO_MARK (both require CAP_NET_ADMIN).
  SysResult sys_setsockopt(Pid pid, Fd fd, std::string_view opt, int value);

  // -- Misc -------------------------------------------------------------------
  SysResult sys_prctl(Pid pid, PrctlOp op);
  SysResult sys_exit(Pid pid, int code);

  /// Syscall-count statistics (per syscall name), for reports and tests.
  const std::map<std::string, long>& syscall_counts() const { return counts_; }

  // -- Per-epoch syscall filters (os/filter.h) --------------------------------
  /// Install a filter stack for `pid`; epoch 0's filter becomes active.
  /// An empty stack allows everything (no policy installed).
  void install_filters(Pid pid, FilterStack stack);
  /// Activate the filter for epoch `index` (clamped to the last filter, so
  /// an epoch discovered beyond the synthesized stack keeps the tightest
  /// known policy rather than failing open).
  void set_filter_epoch(Pid pid, std::size_t index);
  bool has_filters(Pid pid) const { return filters_.contains(pid); }
  /// Consulted by vm::dispatch_syscall before any sys_* handler runs.
  /// Disengaged = allowed; engaged = the -errno to return (and, under
  /// FilterAction::Kill, the process has been terminated).
  std::optional<std::int64_t> filter_check(Pid pid, const std::string& name);
  const std::vector<FilterViolation>& filter_violations() const {
    return violations_;
  }

 private:
  OpenFile* open_file(Pid pid, Fd fd);
  void count(std::string_view name) { ++counts_[std::string(name)]; }
  SysResult set_uid_triple(Pid pid, std::string_view sys,
                           const std::function<caps::CredChange(
                               caps::IdTriple&, bool)>& apply);

  struct FilterState {
    FilterStack stack;
    std::size_t active = 0;
  };

  Vfs vfs_;
  NetStack net_;
  std::map<Pid, Process> procs_;
  Pid next_pid_ = 100;
  std::map<std::string, long> counts_;
  std::map<Pid, FilterState> filters_;
  std::vector<FilterViolation> violations_;
};

}  // namespace pa::os
