# Empty compiler generated dependencies file for pa_ir.
# This may be replaced when dependencies are built.
