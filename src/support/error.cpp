#include "support/error.h"

namespace pa {

void fail(std::string message) { throw Error(std::move(message)); }

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": check failed: `" + expr + "`: " + message);
}

}  // namespace detail
}  // namespace pa
