#include "privanalyzer/pipeline.h"

#include <chrono>

#include "ir/transforms.h"
#include "privanalyzer/loader.h"
#include "support/faultpoint.h"
#include "support/str.h"

namespace pa::privanalyzer {

std::string_view analysis_status_name(AnalysisStatus s) {
  switch (s) {
    case AnalysisStatus::Ok: return "ok";
    case AnalysisStatus::Failed: return "failed";
  }
  return "?";
}

std::string_view filter_mode_name(FilterMode m) {
  switch (m) {
    case FilterMode::Off: return "off";
    case FilterMode::Report: return "report";
    case FilterMode::Enforce: return "enforce";
  }
  return "?";
}

std::optional<FilterMode> parse_filter_mode(std::string_view name) {
  for (FilterMode m : {FilterMode::Off, FilterMode::Report,
                       FilterMode::Enforce})
    if (filter_mode_name(m) == name) return m;
  return std::nullopt;
}

double ProgramAnalysis::vulnerable_fraction(std::size_t attack) const {
  double total = 0.0;
  for (std::size_t i = 0; i < verdicts.size() && i < chrono.rows.size(); ++i)
    if (verdicts[i].verdicts[attack] == attacks::CellVerdict::Vulnerable)
      total += chrono.rows[i].fraction;
  return total;
}

double ProgramAnalysis::filtered_vulnerable_fraction(std::size_t attack) const {
  double total = 0.0;
  for (std::size_t i = 0;
       i < filtered_verdicts.size() && i < chrono.rows.size(); ++i)
    if (filtered_verdicts[i].verdicts[attack] ==
        attacks::CellVerdict::Vulnerable)
      total += chrono.rows[i].fraction;
  return total;
}

rosa::SearchStats ProgramAnalysis::search_stats() const {
  rosa::SearchStats total;
  for (const attacks::EpochVerdicts& ev : verdicts)
    for (const rosa::SearchResult& r : ev.results) total.merge(r.stats);
  return total;
}

ir::Module transformed_module(const programs::ProgramSpec& spec,
                              const autopriv::Options& options) {
  // ProgramSpec factories are cheap; rebuilding gives us a fresh module to
  // transform without copying IR.
  ir::Module module = spec.module;
  autopriv::run_autopriv(module, "main", options);
  return module;
}

ProgramAnalysis analyze_program(const programs::ProgramSpec& spec,
                                const PipelineOptions& options) {
  ProgramAnalysis out;
  out.program = spec.name;

  // Stage 0 (optional): PrivLint over the untransformed program. Findings
  // ride along as diagnostics; they never abort the analysis.
  if (options.run_lint) {
    lint::LintReport report = lint::run_lints(spec, options.lint);
    for (support::Diagnostic& d : report.to_diagnostics())
      out.diagnostics.push_back(std::move(d));
  }

  // Stage 1: AutoPriv.
  ir::Module module = spec.module;
  out.autopriv_report = autopriv::run_autopriv(module, "main", options.autopriv);
  if (options.simplify_after_autopriv) ir::simplify(module);

  // Stage 2: ChronoPriv measured execution in the right world.
  auto make_world = [&options, &spec]() {
    return options.world_factory
               ? options.world_factory()
               : (spec.refactored_world ? programs::make_refactored_world()
                                        : programs::make_standard_world());
  };
  os::Kernel kernel = make_world();
  os::Pid pid = programs::spawn_program(kernel, spec);
  if (options.filters == FilterMode::Off) {
    out.chrono = chronopriv::run_instrumented(kernel, module, pid, spec.args,
                                              "main", &out.exit_code);
  } else {
    // Measurement run with point capture: the observed per-epoch entry
    // points are the roots the static reachable-syscall closure grows from.
    chronopriv::EpochTracker tracker;
    tracker.set_record_points(true);
    out.chrono = chronopriv::run_instrumented_with(
        kernel, module, pid, tracker, spec.args, "main", &out.exit_code);
    out.filter_report = filters::synthesize_filters(module, out.chrono,
                                                    tracker.epoch_points());

    if (options.filters == FilterMode::Enforce) {
      // Re-execute in a fresh, identically-constructed world with the
      // conservative allowlists installed. Execution is deterministic, so
      // epoch indices are discovered in the same order as the measurement
      // run and the epoch-change hook keeps the active filter in lockstep.
      // Sound filters make this run bit-identical to the measurement.
      os::Kernel enforced_kernel = make_world();
      os::Pid enforced_pid = programs::spawn_program(enforced_kernel, spec);
      enforced_kernel.install_filters(
          enforced_pid,
          filters::to_filter_stack(out.filter_report, options.filter_action));
      chronopriv::EpochTracker enforced_tracker;
      enforced_tracker.set_epoch_change_hook(
          [&enforced_kernel, enforced_pid](std::size_t epoch) {
            enforced_kernel.set_filter_epoch(enforced_pid, epoch);
          });
      long enforced_exit = 0;
      chronopriv::ChronoReport enforced = chronopriv::run_instrumented_with(
          enforced_kernel, module, enforced_pid, enforced_tracker, spec.args,
          "main", &enforced_exit);
      out.filter_violations =
          static_cast<int>(enforced_kernel.filter_violations().size());
      if (out.filter_violations > 0) {
        const os::FilterViolation& v =
            enforced_kernel.filter_violations().front();
        out.diagnostics.push_back(support::Diagnostic{
            support::Stage::ChronoPriv, support::Severity::Warning,
            support::DiagCode::FilterViolation, spec.name,
            str::cat("enforced epoch filter denied ", out.filter_violations,
                     " syscall(s); first: ", v.syscall, " in epoch ",
                     v.epoch,
                     " — the conservative closure should be sound, so this "
                     "indicates nondeterminism or a reachability bug")});
      }
      // The enforced run IS the reported execution in this mode; for sound
      // filters it reproduces the measurement bit-identically.
      out.chrono = std::move(enforced);
      out.exit_code = enforced_exit;
    }
  }

  // Stage 3: one ROSA query per (epoch x attack), fanned out across
  // options.rosa_threads workers (the queries are independent; results are
  // deterministic and identical to the serial order). A pipeline-wide
  // deadline and per-query budget escalation apply here — the matrix is the
  // runaway-cost stage.
  if (options.run_rosa) {
    rosa::SearchLimits limits = options.rosa_limits;
    if (options.max_total_seconds > 0)
      limits.deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                options.max_total_seconds));
    rosa::EscalationPolicy escalation{options.rosa_escalation_rounds, 2.0};

    // Verdict cache: an explicit shared instance wins (batch-wide reuse);
    // otherwise a private per-program cache still collapses the duplicate
    // epochs within this matrix. The persistent file is loaded up front —
    // a bad file degrades to a cold cache with a warning, never a failure —
    // and rewritten after the matrix completes.
    std::shared_ptr<rosa::QueryCache> cache = options.rosa_cache_instance;
    if (!cache && options.rosa_cache)
      cache = std::make_shared<rosa::QueryCache>();
    if (cache && !options.rosa_cache_file.empty()) {
      PA_FAULTPOINT("rosa.cache_load");
      std::string warn;
      if (!cache->load_file(options.rosa_cache_file, &warn))
        out.diagnostics.push_back(support::Diagnostic{
            support::Stage::Rosa, support::Severity::Warning,
            support::DiagCode::CacheLoadFailed, spec.name, warn});
    }

    const std::vector<std::string> syscalls = spec.syscalls_used();
    std::vector<attacks::ScenarioInput> inputs;
    inputs.reserve(out.chrono.rows.size());
    for (const chronopriv::EpochRow& row : out.chrono.rows)
      inputs.push_back(attacks::scenario_from_epoch(
          row, syscalls, spec.scenario_extra_users,
          spec.scenario_extra_groups));
    out.verdicts =
        attacks::analyze_epochs(out.chrono.rows, inputs, limits,
                                options.rosa_threads, escalation, cache.get());

    // The filtered matrix: the same queries with each epoch's attacker
    // constrained to the epoch's conservative allowlist — what an exploit
    // could still do with the filters installed. The baseline matrix above
    // is untouched (Off/Report/Enforce all report identical baselines).
    if (options.filters != FilterMode::Off && !out.filter_report.empty()) {
      std::vector<attacks::ScenarioInput> filtered_inputs;
      filtered_inputs.reserve(out.chrono.rows.size());
      for (std::size_t i = 0; i < out.chrono.rows.size(); ++i) {
        std::vector<std::string> allowed;
        if (i < out.filter_report.epochs.size()) {
          for (const std::string& s : syscalls)
            if (out.filter_report.epochs[i].conservative.contains(s))
              allowed.push_back(s);
        }
        filtered_inputs.push_back(attacks::scenario_from_epoch(
            out.chrono.rows[i], allowed, spec.scenario_extra_users,
            spec.scenario_extra_groups));
      }
      out.filtered_verdicts = attacks::analyze_epochs(
          out.chrono.rows, filtered_inputs, limits, options.rosa_threads,
          escalation, cache.get());
    }

    if (cache && !options.rosa_cache_file.empty()) {
      std::string warn;
      if (!cache->save_file(options.rosa_cache_file, &warn))
        out.diagnostics.push_back(support::Diagnostic{
            support::Stage::Rosa, support::Severity::Warning,
            support::DiagCode::CacheSaveFailed, spec.name, warn});
    }

    if (limits.has_deadline() &&
        std::chrono::steady_clock::now() >= limits.deadline)
      out.diagnostics.push_back(support::Diagnostic{
          support::Stage::Rosa, support::Severity::Warning,
          support::DiagCode::DeadlineExceeded, spec.name,
          str::cat("pipeline deadline of ", str::fixed(options.max_total_seconds, 3),
                   "s expired during the query matrix; unfinished cells "
                   "report as Timeout (presumed invulnerable)")});
  }
  return out;
}

namespace {

/// Shared failure path: convert the in-flight exception into a Failed
/// analysis carrying a structured diagnostic.
ProgramAnalysis failed_analysis(std::string program, const std::exception& e,
                                support::Stage fallback_stage) {
  ProgramAnalysis out;
  out.status = AnalysisStatus::Failed;
  out.diagnostics.push_back(
      support::diagnostic_from_exception(e, fallback_stage, program));
  // Prefer the diagnostic's program attribution (e.g. the !name directive
  // parsed before the failure) over the caller's guess.
  out.program = out.diagnostics.back().program.empty()
                    ? std::move(program)
                    : out.diagnostics.back().program;
  return out;
}

}  // namespace

ProgramAnalysis try_analyze_program(const programs::ProgramSpec& spec,
                                    const PipelineOptions& options) {
  try {
    return analyze_program(spec, options);
  } catch (const std::exception& e) {
    return failed_analysis(spec.name, e, support::Stage::Pipeline);
  }
}

ProgramAnalysis try_analyze_file(const std::string& path,
                                 const PipelineOptions& options) {
  programs::ProgramSpec spec;
  try {
    spec = load_program_file(path);
  } catch (const std::exception& e) {
    // Attribute load failures to the file's basename (the loader's default
    // program name) so batch reports stay readable.
    std::string base = path;
    if (auto slash = base.find_last_of('/'); slash != std::string::npos)
      base = base.substr(slash + 1);
    return failed_analysis(std::move(base), e, support::Stage::Loader);
  }
  return try_analyze_program(spec, options);
}

std::vector<ProgramAnalysis> analyze_programs(
    const std::vector<programs::ProgramSpec>& specs,
    const PipelineOptions& options) {
  std::vector<ProgramAnalysis> out;
  out.reserve(specs.size());
  for (const programs::ProgramSpec& spec : specs)
    out.push_back(try_analyze_program(spec, options));
  return out;
}

int batch_exit_code(const std::vector<ProgramAnalysis>& analyses,
                    bool empty_is_failure) {
  if (analyses.empty()) return empty_is_failure ? kExitAllFailed : kExitOk;
  std::size_t failed = 0;
  for (const ProgramAnalysis& a : analyses)
    if (!a.ok()) ++failed;
  if (failed == 0) return kExitOk;
  if (failed == analyses.size()) return kExitAllFailed;
  return kExitPartialFailure;
}

}  // namespace pa::privanalyzer
