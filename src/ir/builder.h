// IRBuilder: the ergonomic construction API used by src/programs/ to define
// the evaluation programs. Branch targets are written as label strings and
// resolved when the function is finished.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "ir/module.h"

namespace pa::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(&module) {}

  // -- Function / block lifecycle -------------------------------------------
  /// Start a function with `num_params` parameters (in %0..%n-1) and create
  /// its entry block.
  IRBuilder& begin_function(std::string name, int num_params = 0,
                            std::string entry_label = "entry");
  /// Create a block (insertion point unchanged).
  IRBuilder& declare_block(std::string label);
  /// Create a block if needed and move the insertion point to its end.
  IRBuilder& at(std::string label);
  /// Resolve labels; verifier-ready. Returns the finished function.
  Function& end_function();

  /// True if the current insertion block already ends in a terminator
  /// (frontends use this to decide whether a fall-through branch is needed).
  bool current_block_terminated() const;

  /// Register holding parameter `i`.
  int param(int i) const;

  // -- Operand shorthands ----------------------------------------------------
  static Operand r(int reg) { return Operand::reg(reg); }
  static Operand i(std::int64_t v) { return Operand::imm(v); }
  static Operand s(std::string v) { return Operand::str(std::move(v)); }
  static Operand f(std::string v) { return Operand::func(std::move(v)); }
  static Operand c(caps::CapSet v) { return Operand::capset(v); }

  // -- Instructions ----------------------------------------------------------
  int mov(Operand v);
  /// mov into an existing register (loop counters, accumulators).
  void mov_to(int dst, Operand v);
  int binop(Opcode op, Operand a, Operand b);
  int add(Operand a, Operand b) { return binop(Opcode::Add, a, b); }
  int sub(Operand a, Operand b) { return binop(Opcode::Sub, a, b); }
  int mul(Operand a, Operand b) { return binop(Opcode::Mul, a, b); }
  int cmpeq(Operand a, Operand b) { return binop(Opcode::CmpEq, a, b); }
  int cmpne(Operand a, Operand b) { return binop(Opcode::CmpNe, a, b); }
  int cmp_lt(Operand a, Operand b) { return binop(Opcode::CmpLt, a, b); }
  int cmp_le(Operand a, Operand b) { return binop(Opcode::CmpLe, a, b); }
  int cmp_gt(Operand a, Operand b) { return binop(Opcode::CmpGt, a, b); }
  int cmp_ge(Operand a, Operand b) { return binop(Opcode::CmpGe, a, b); }
  int not_(Operand a);

  void br(std::string label);
  void condbr(Operand cond, std::string if_true, std::string if_false);
  void ret();
  void ret(Operand v);
  void exit(Operand code);
  void unreachable();

  /// Direct call; returns the result register (always allocated).
  int call(std::string callee, std::vector<Operand> args = {});
  /// Call through a register holding a FuncRef.
  int callind(Operand callee, std::vector<Operand> args = {});
  /// Take @name's address into a fresh register.
  int funcaddr(std::string name);

  /// SimOS syscall; returns the result register.
  int syscall(std::string name, std::vector<Operand> args = {});

  void priv_raise(caps::CapSet set);
  void priv_lower(caps::CapSet set);
  void priv_remove(caps::CapSet set);

  void nop(int count = 1);

  /// Emit `count` nops — used by the program models to give a code region
  /// the dynamic weight its real counterpart has (parsing, crypto, I/O).
  void work(int count) { nop(count); }

  Module& module() { return *module_; }

 private:
  Instruction& append(Instruction inst);
  int fresh_reg();
  BasicBlock& cur_block();

  Module* module_;
  Function* fn_ = nullptr;
  int cur_block_ = -1;
  int next_reg_ = 0;
};

}  // namespace pa::ir
