// Internal helpers shared by the program models.
#pragma once

#include <string>

#include "ir/builder.h"
#include "programs/world.h"
#include "vm/syscall_bridge.h"

namespace pa::programs::detail {

using ir::IRBuilder;
using B = ir::IRBuilder;  // operand shorthands: B::i, B::s, B::r, B::c
using caps::CapSet;
using caps::Capability;
using vm::SyscallEncoding;

/// Emit a getspnam(3)-style function: read /etc/shadow, raising
/// CAP_DAC_READ_SEARCH around the access when `privileged` (the stock
/// programs) or relying on plain DAC when not (the refactored programs run
/// with euid = the shadow owner).
inline void emit_getspnam(IRBuilder& b, const std::string& name,
                          bool privileged) {
  b.begin_function(name, 0);
  if (privileged) b.priv_raise({Capability::DacReadSearch});
  int fd =
      b.syscall("open", {B::s("/etc/shadow"), B::i(SyscallEncoding::kRead)});
  b.syscall("read", {B::r(fd), B::i(256)});
  b.syscall("close", {B::r(fd)});
  if (privileged) b.priv_lower({Capability::DacReadSearch});
  b.ret(B::i(0));
  b.end_function();
}

/// Emit a counted loop:  for (i = 0; i < n; ++i) { body(i); }
/// `body` receives the loop-counter register; the helper owns the back edge.
/// Block labels derive from `tag` and must be unique within the function.
template <typename BodyFn>
void emit_loop(IRBuilder& b, const std::string& tag, long n, BodyFn body) {
  int i = b.mov(B::i(0));
  b.br(tag + "_head");
  b.at(tag + "_head");
  int cond = b.cmp_lt(B::r(i), B::i(n));
  b.condbr(B::r(cond), tag + "_body", tag + "_done");
  b.at(tag + "_body");
  body(i);
  int next = b.add(B::r(i), B::i(1));
  b.mov_to(i, B::r(next));
  b.br(tag + "_head");
  b.at(tag + "_done");
}

/// Emit code that executes ~`total` dynamic instructions while keeping the
/// static footprint small: short stretches become straight-line nops, long
/// ones a loop. Models the real programs' parsing / crypto / I/O work that
/// dominates their dynamic instruction counts.
inline void emit_work(IRBuilder& b, const std::string& tag, long total) {
  if (total <= 0) return;
  if (total <= 256) {
    b.work(static_cast<int>(total));
    return;
  }
  constexpr long kBody = 27;             // nops per iteration
  constexpr long kPerIter = kBody + 5;   // + cmp, condbr, add, mov, br
  const long iters = total / kPerIter;
  emit_loop(b, tag, iters, [&](int) { b.work(static_cast<int>(kBody)); });
  b.work(static_cast<int>(total % kPerIter));
}

}  // namespace pa::programs::detail
