// Per-epoch syscall filters: the SimOS analogue of a temporally-partitioned
// seccomp policy. A FilterStack holds one allowlist per privilege epoch of
// the instrumented program; the kernel consults the ACTIVE filter at syscall
// dispatch (vm/syscall_bridge.cpp) and transitions between filters when the
// epoch tracker crosses an epoch boundary. Filters synthesized from the
// conservative reachable-syscall closure (filters/epoch_filter.h) are sound:
// enforcement is a no-op for every legitimate execution.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace pa::os {

/// What happens when a filtered syscall is attempted.
enum class FilterAction {
  Eperm,  // fail the call with -EPERM, let the program continue
  Kill,   // terminate the process (exit code 128 + SIGSYS), seccomp-style
};

/// One epoch's allowlist.
struct SyscallFilter {
  std::string epoch;                // epoch row name, for diagnostics
  std::set<std::string> allowed;    // permitted syscall names
};

/// The full per-process policy: one filter per epoch, in epoch-row order.
struct FilterStack {
  std::vector<SyscallFilter> filters;
  FilterAction action = FilterAction::Eperm;
};

/// A denied dispatch, recorded by the kernel for reports and tests.
struct FilterViolation {
  int pid = 0;
  std::string epoch;
  std::string syscall;
  FilterAction action = FilterAction::Eperm;
};

}  // namespace pa::os
