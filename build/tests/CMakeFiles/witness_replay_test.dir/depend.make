# Empty dependencies file for witness_replay_test.
# This may be replaced when dependencies are built.
