#include "daemon/proto.h"

#include <cstring>
#include <stdexcept>

#include "support/diagnostics.h"
#include "support/str.h"

namespace pa::daemon {
namespace {

using support::DiagCode;
using support::fail_stage;
using support::Stage;

[[noreturn]] void proto_fail(const std::string& what) {
  fail_stage(Stage::Daemon, DiagCode::ProtocolError, "", what);
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::string escape_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != '%') {
      out.push_back(v[i]);
      continue;
    }
    if (i + 2 >= v.size()) proto_fail("truncated %-escape in payload value");
    std::string_view hex = v.substr(i + 1, 2);
    if (hex == "25") out.push_back('%');
    else if (hex == "0A") out.push_back('\n');
    else if (hex == "0D") out.push_back('\r');
    else proto_fail(str::cat("unknown %-escape '%", std::string(hex),
                             "' in payload value"));
    i += 2;
  }
  return out;
}

bool kv_get_bool(const KvPairs& kv, std::string_view key, bool fallback) {
  std::string v = kv_get(kv, key, fallback ? "1" : "0");
  return v != "0" && v != "false";
}

}  // namespace

std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::Submit: return "submit";
    case MsgType::Status: return "status";
    case MsgType::Cancel: return "cancel";
    case MsgType::Ping: return "ping";
    case MsgType::Shutdown: return "shutdown";
    case MsgType::SubmitOk: return "submit-ok";
    case MsgType::Rejected: return "rejected";
    case MsgType::StatusReply: return "status-reply";
    case MsgType::Event: return "event";
    case MsgType::Result: return "result";
    case MsgType::Pong: return "pong";
    case MsgType::ErrorMsg: return "error";
    case MsgType::Draining: return "draining";
  }
  return "unknown";
}

void write_frame(support::Socket& s, const Frame& f) {
  if (f.payload.size() > kMaxFrameBytes)
    proto_fail(str::cat("refusing to send oversized frame (", f.payload.size(),
                        " bytes, limit ", kMaxFrameBytes, ")"));
  std::string wire;
  wire.reserve(12 + f.payload.size());
  put_u32(wire, kMagic);
  put_u16(wire, kProtoVersion);
  put_u16(wire, static_cast<std::uint16_t>(f.type));
  put_u32(wire, static_cast<std::uint32_t>(f.payload.size()));
  wire += f.payload;
  s.write_all(wire.data(), wire.size());
}

std::optional<Frame> read_frame(support::Socket& s, int timeout_ms,
                                std::size_t max_payload) {
  unsigned char hdr[12];
  if (!s.read_exact(hdr, sizeof hdr, timeout_ms)) return std::nullopt;
  if (get_u32(hdr) != kMagic)
    proto_fail("bad frame magic (peer is not speaking the PAD1 protocol)");
  std::uint16_t version = get_u16(hdr + 4);
  if (version != kProtoVersion)
    proto_fail(str::cat("unsupported protocol version ", version,
                        " (this build speaks ", kProtoVersion, ")"));
  std::uint32_t len = get_u32(hdr + 8);
  if (len > max_payload)
    proto_fail(str::cat("oversized frame payload (", len, " bytes, limit ",
                        max_payload, ")"));
  Frame f;
  f.type = static_cast<MsgType>(get_u16(hdr + 6));
  f.payload.resize(len);
  if (len != 0 && !s.read_exact(f.payload.data(), len, timeout_ms))
    proto_fail("peer closed mid-frame (truncated payload)");
  return f;
}

std::string encode_kv(const KvPairs& kv) {
  std::string out;
  for (const auto& [k, v] : kv) {
    out += k;
    out.push_back('=');
    out += escape_value(v);
    out.push_back('\n');
  }
  return out;
}

KvPairs decode_kv(std::string_view payload) {
  KvPairs out;
  for (const std::string& line : str::split(payload, '\n')) {
    auto eq = line.find('=');
    if (eq == std::string::npos)
      proto_fail(str::cat("payload line without '=': '", line, "'"));
    out.emplace_back(line.substr(0, eq), unescape_value(
                         std::string_view(line).substr(eq + 1)));
  }
  return out;
}

std::string kv_get(const KvPairs& kv, std::string_view key,
                   std::string_view fallback) {
  for (const auto& [k, v] : kv)
    if (k == key) return v;
  return std::string(fallback);
}

std::uint64_t kv_get_u64(const KvPairs& kv, std::string_view key,
                         std::uint64_t fallback) {
  std::string v = kv_get(kv, key);
  if (v.empty()) return fallback;
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    proto_fail(str::cat("bad integer for key '", std::string(key), "': '", v,
                        "'"));
  }
}

double kv_get_double(const KvPairs& kv, std::string_view key, double fallback) {
  std::string v = kv_get(kv, key);
  if (v.empty()) return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    proto_fail(str::cat("bad number for key '", std::string(key), "': '", v,
                        "'"));
  }
}

Frame JobRequest::to_frame() const {
  KvPairs kv = {
      {"kind", kind},
      {"source", source},
      {"name", name},
      {"max_states", std::to_string(max_states)},
      {"max_bytes", std::to_string(max_bytes)},
      {"search_threads", std::to_string(search_threads)},
      {"rosa_threads", std::to_string(rosa_threads)},
      {"escalate_rounds", std::to_string(escalate_rounds)},
      {"deadline_secs", str::fixed(deadline_secs, 3)},
      {"run_rosa", run_rosa ? "1" : "0"},
      {"use_cache", use_cache ? "1" : "0"},
      {"reduction", reduction ? "1" : "0"},
      {"fused", fused ? "1" : "0"},
      {"filters", filters},
  };
  return Frame{MsgType::Submit, encode_kv(kv)};
}

JobRequest JobRequest::from_frame(const Frame& f) {
  KvPairs kv = decode_kv(f.payload);
  JobRequest r;
  r.kind = kv_get(kv, "kind", r.kind);
  r.source = kv_get(kv, "source");
  r.name = kv_get(kv, "name");
  r.max_states = kv_get_u64(kv, "max_states", r.max_states);
  r.max_bytes = kv_get_u64(kv, "max_bytes", r.max_bytes);
  r.search_threads =
      static_cast<unsigned>(kv_get_u64(kv, "search_threads", r.search_threads));
  r.rosa_threads =
      static_cast<unsigned>(kv_get_u64(kv, "rosa_threads", r.rosa_threads));
  r.escalate_rounds = static_cast<unsigned>(
      kv_get_u64(kv, "escalate_rounds", r.escalate_rounds));
  r.deadline_secs = kv_get_double(kv, "deadline_secs", r.deadline_secs);
  r.run_rosa = kv_get_bool(kv, "run_rosa", r.run_rosa);
  r.use_cache = kv_get_bool(kv, "use_cache", r.use_cache);
  r.reduction = kv_get_bool(kv, "reduction", r.reduction);
  r.fused = kv_get_bool(kv, "fused", r.fused);
  r.filters = kv_get(kv, "filters", r.filters);
  return r;
}

Frame SubmitReply::to_frame() const {
  KvPairs kv = {
      {"job_id", std::to_string(job_id)},
      {"reason", reason},
  };
  return Frame{accepted ? MsgType::SubmitOk : MsgType::Rejected,
               encode_kv(kv)};
}

SubmitReply SubmitReply::from_frame(const Frame& f) {
  KvPairs kv = decode_kv(f.payload);
  SubmitReply r;
  r.accepted = f.type == MsgType::SubmitOk;
  r.job_id = kv_get_u64(kv, "job_id", 0);
  r.reason = kv_get(kv, "reason");
  return r;
}

Frame StatusReply::to_frame() const {
  KvPairs kv = {
      {"job_id", std::to_string(job_id)},
      {"state", state},
  };
  return Frame{MsgType::StatusReply, encode_kv(kv)};
}

StatusReply StatusReply::from_frame(const Frame& f) {
  KvPairs kv = decode_kv(f.payload);
  StatusReply r;
  r.job_id = kv_get_u64(kv, "job_id", 0);
  r.state = kv_get(kv, "state", "unknown");
  return r;
}

Frame EventMsg::to_frame() const {
  KvPairs kv = {
      {"job_id", std::to_string(job_id)},
      {"kind", kind},
      {"text", text},
  };
  return Frame{MsgType::Event, encode_kv(kv)};
}

EventMsg EventMsg::from_frame(const Frame& f) {
  KvPairs kv = decode_kv(f.payload);
  EventMsg e;
  e.job_id = kv_get_u64(kv, "job_id", 0);
  e.kind = kv_get(kv, "kind");
  e.text = kv_get(kv, "text");
  return e;
}

Frame ResultMsg::to_frame() const {
  KvPairs kv = {
      {"job_id", std::to_string(job_id)},
      {"state", state},
      {"exit_code", std::to_string(exit_code)},
      {"body", body},
  };
  return Frame{MsgType::Result, encode_kv(kv)};
}

ResultMsg ResultMsg::from_frame(const Frame& f) {
  KvPairs kv = decode_kv(f.payload);
  ResultMsg r;
  r.job_id = kv_get_u64(kv, "job_id", 0);
  r.state = kv_get(kv, "state", "unknown");
  r.exit_code = static_cast<int>(kv_get_u64(kv, "exit_code", 0));
  r.body = kv_get(kv, "body");
  return r;
}

}  // namespace pa::daemon
