// Tests for the multi-process scheduler: interleaving, cross-process
// signals, and a real privilege-separated monitor/worker pair.
#include <gtest/gtest.h>

#include "chronopriv/epoch.h"
#include "ir/builder.h"
#include "vm/scheduler.h"

namespace pa::vm {
namespace {

using ir::IRBuilder;
using B = IRBuilder;
using caps::Capability;
using caps::Credentials;

TEST(SchedulerTest, TwoProcessesBothFinish) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 1);
  b.nop(50);
  b.ret(B::r(0));
  b.end_function();

  os::Kernel k;
  os::Pid p1 = k.spawn("a", Credentials::of_user(1000, 1000), {});
  os::Pid p2 = k.spawn("b", Credentials::of_user(1001, 1001), {});
  Scheduler sched(k);
  sched.add(m, p1, "main", {std::int64_t{7}});
  sched.add(m, p2, "main", {std::int64_t{8}});
  std::uint64_t total = sched.run_all(/*quantum=*/10);

  EXPECT_EQ(sched.exit_code(0), 7);
  EXPECT_EQ(sched.exit_code(1), 8);
  EXPECT_FALSE(k.process(p1).alive());
  EXPECT_FALSE(k.process(p2).alive());
  EXPECT_GE(total, 102u);
}

TEST(SchedulerTest, CrossProcessSignalDelivery) {
  // Process A registers a SIGTERM handler and loops; process B kills A.
  // A's handler exits with a recognizable code.
  ir::Module ma("a");
  {
    IRBuilder b(ma);
    b.begin_function("on_term", 1);
    b.exit(B::i(99));
    b.end_function();
    b.begin_function("main", 0);
    b.syscall("signal", {B::i(os::kSigTerm), B::f("on_term")});
    b.br("loop");
    b.at("loop");
    b.nop(3);
    b.br("loop");  // spins until signalled
    b.end_function();
  }
  ir::Module mb("b");
  os::Kernel k;
  os::Pid pa_ = k.spawn("A", Credentials::of_user(1000, 1000), {});
  os::Pid pb = k.spawn("B", Credentials::of_user(1000, 1000), {});
  {
    IRBuilder b(mb);
    b.begin_function("main", 0);
    b.nop(40);  // let A get going
    b.syscall("kill", {B::i(pa_), B::i(os::kSigTerm)});
    b.ret(B::i(0));
    b.end_function();
  }

  Scheduler sched(k);
  sched.add(ma, pa_);
  sched.add(mb, pb);
  sched.run_all(/*quantum=*/8);

  EXPECT_EQ(sched.exit_code(0), 99);  // handler ran
  EXPECT_EQ(sched.exit_code(1), 0);
}

TEST(SchedulerTest, SigkillTerminatesVictimMidRun) {
  ir::Module victim("v");
  {
    IRBuilder b(victim);
    b.begin_function("main", 0);
    b.br("loop");
    b.at("loop");
    b.nop(2);
    b.br("loop");
    b.end_function();
  }
  ir::Module killer("k");
  os::Kernel k;
  os::Pid pv = k.spawn("v", Credentials::of_user(109, 109), {});
  os::Pid pk = k.spawn("k", Credentials::of_user(1000, 1000),
                       {Capability::Kill});
  {
    IRBuilder b(killer);
    b.begin_function("main", 0);
    b.priv_raise({Capability::Kill});
    b.syscall("kill", {B::i(pv), B::i(os::kSigKill)});
    b.priv_lower({Capability::Kill});
    b.ret(B::i(0));
    b.end_function();
  }

  Scheduler sched(k);
  sched.add(victim, pv);
  sched.add(killer, pk);
  sched.run_all();
  EXPECT_FALSE(k.process(pv).alive());
  EXPECT_EQ(k.process(pv).exit_code, 128 + os::kSigKill);
}

TEST(SchedulerTest, PrivilegeSeparatedPair) {
  // The real privilege-separation shape: a monitor keeps CAP_NET_BIND_SERVICE
  // and binds the privileged port; the worker (a separate process with an
  // EMPTY permitted set) does the long-running request work. ChronoPriv on
  // the worker shows zero capability exposure regardless of how long it runs.
  ir::Module monitor("monitor");
  {
    IRBuilder b(monitor);
    b.begin_function("main", 0);
    int s = b.syscall("socket", {B::i(0)});
    b.priv_raise({Capability::NetBindService});
    b.syscall("bind", {B::r(s), B::i(22)});
    b.priv_lower({Capability::NetBindService});
    b.nop(10);
    b.exit(B::i(0));
    b.end_function();
  }
  ir::Module worker("worker");
  {
    IRBuilder b(worker);
    b.begin_function("main", 0);
    b.nop(400);  // request handling
    b.exit(B::i(0));
    b.end_function();
  }

  os::Kernel k;
  os::Pid pm = k.spawn("monitor", Credentials::of_user(1000, 1000),
                       {Capability::NetBindService});
  os::Pid pw = k.spawn("worker", Credentials::of_user(1000, 1000), {});

  chronopriv::EpochTracker worker_epochs;
  Scheduler sched(k);
  sched.add(monitor, pm);
  Interpreter& wi = sched.add(worker, pw);
  wi.set_tracer(&worker_epochs);
  sched.run_all();

  EXPECT_EQ(k.net().port_owner(22), pm);  // the monitor bound the port
  ASSERT_EQ(worker_epochs.epochs().size(), 1u);
  EXPECT_TRUE(worker_epochs.epochs()[0].key.permitted.empty());
  EXPECT_GT(worker_epochs.total_instructions(), 400u);
}

TEST(SchedulerTest, StepRoundReportsLiveness) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.nop(5);
  b.ret(B::i(0));
  b.end_function();

  os::Kernel k;
  os::Pid p = k.spawn("p", Credentials::of_user(1000, 1000), {});
  Scheduler sched(k);
  sched.add(m, p);
  EXPECT_TRUE(sched.step_round(/*quantum=*/2));   // 2 of 6 instructions
  EXPECT_TRUE(sched.step_round(2));
  EXPECT_FALSE(sched.step_round(100));            // finishes here
  EXPECT_FALSE(sched.step_round(100));            // idempotent when done
}

}  // namespace
}  // namespace pa::vm
