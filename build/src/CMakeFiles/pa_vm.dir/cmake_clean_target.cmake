file(REMOVE_RECURSE
  "libpa_vm.a"
)
