file(REMOVE_RECURSE
  "libpa_dataflow.a"
)
