// Chunked append-only arena with byte-level memory accounting — the node
// store behind rosa::search().
//
// Two properties matter to the search loop:
//
//  1. Stable addresses. Elements never move once appended (chunks are
//     reserved up front and never reallocated), so the BFS can hold plain
//     references to popped nodes across successor appends — the old
//     std::vector<Node> store forced a re-fetch-by-index discipline because
//     any push_back could reallocate the whole array.
//  2. Accountable footprint. bytes() reports the arena's allocated chunk
//     memory plus caller-registered per-element heap bytes (add_bytes), so
//     SearchLimits::max_bytes can bound a search by memory the same way
//     max_states bounds it by node count, and SearchStats::peak_bytes can
//     report the high-water mark. The arena only ever grows, so its current
//     size IS the peak.
//
// Chunk capacities grow geometrically (first_capacity, doubling up to
// chunk_capacity, then uniform): a ten-node search is charged a 16-node
// chunk rather than a full-sized one, so bytes-per-state stays honest at
// both ends of the size spectrum, and the uniform cap keeps worst-case
// reservation slack to one chunk. Growth stays deterministic — capacities
// depend only on append count, never on allocator behaviour.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace pa::rosa {

template <typename T>
class Arena {
 public:
  explicit Arena(std::size_t chunk_capacity = 128,
                 std::size_t first_capacity = 16)
      : chunk_cap_(chunk_capacity ? chunk_capacity : 1),
        next_cap_(std::min(first_capacity ? first_capacity : 1, chunk_cap_)) {}

  std::size_t size() const { return size_; }

  /// Append; the returned reference (and every earlier one) stays valid for
  /// the arena's lifetime.
  T& push_back(T&& v) {
    if (chunks_.empty() ||
        chunks_.back().size() == chunks_.back().capacity()) {
      starts_.push_back(size_);
      chunks_.emplace_back();
      chunks_.back().reserve(next_cap_);
      reserved_ += next_cap_;
      next_cap_ = std::min(next_cap_ * 2, chunk_cap_);
    }
    chunks_.back().push_back(std::move(v));
    ++size_;
    return chunks_.back().back();
  }

  T& operator[](std::size_t i) {
    const std::size_t c = chunk_of(i);
    return chunks_[c][i - starts_[c]];
  }
  const T& operator[](std::size_t i) const {
    const std::size_t c = chunk_of(i);
    return chunks_[c][i - starts_[c]];
  }

  /// Register heap bytes owned by elements (their own allocations are
  /// invisible to the arena) so bytes() reflects the true footprint.
  void add_bytes(std::size_t n) { extra_bytes_ += n; }

  /// Allocated bytes: chunk reservations plus registered extras.
  std::size_t bytes() const {
    return reserved_ * sizeof(T) + extra_bytes_;
  }

 private:
  std::size_t chunk_of(std::size_t i) const {
    // Chunks are few (geometric prefix, then uniform), so a binary search
    // over their start indices is a handful of compares.
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), i);
    return static_cast<std::size_t>(it - starts_.begin()) - 1;
  }

  std::size_t chunk_cap_;
  std::size_t next_cap_;
  std::size_t size_ = 0;
  std::size_t reserved_ = 0;
  std::size_t extra_bytes_ = 0;
  std::vector<std::size_t> starts_;
  std::vector<std::vector<T>> chunks_;
};

}  // namespace pa::rosa
