# Empty dependencies file for chronopriv_test.
# This may be replaced when dependencies are built.
