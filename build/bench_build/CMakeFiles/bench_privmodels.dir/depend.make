# Empty dependencies file for bench_privmodels.
# This may be replaced when dependencies are built.
