// Differential test for the parallel ROSA query engine: for every program
// spec × attack, the pipeline run with rosa_threads=1 (the original serial
// path) and rosa_threads=4 must produce identical verdict matrices,
// bit-identical vulnerable_fraction values, identical per-query search
// counters, and the same witnesses — and every witness must replay on the
// SimOS kernel. This is the harness that guards the paper's Table III/V
// numbers against the parallel engine.
#include <gtest/gtest.h>

#include "privanalyzer/pipeline.h"
#include "rosa/query.h"
#include "rosa/replay.h"
#include "rosa_test_util.h"

namespace pa::privanalyzer {
namespace {

using attacks::EpochVerdicts;

PipelineOptions options_with_threads(unsigned n_threads) {
  PipelineOptions opts;
  opts.rosa_limits.max_states = 150'000;
  opts.rosa_threads = n_threads;
  return opts;
}

void expect_equivalent(const ProgramAnalysis& serial,
                       const ProgramAnalysis& parallel) {
  EXPECT_EQ(serial.program, parallel.program);
  ASSERT_EQ(serial.verdicts.size(), parallel.verdicts.size());

  for (std::size_t e = 0; e < serial.verdicts.size(); ++e) {
    const EpochVerdicts& s = serial.verdicts[e];
    const EpochVerdicts& p = parallel.verdicts[e];
    EXPECT_EQ(s.epoch_name, p.epoch_name);
    for (std::size_t a = 0; a < s.verdicts.size(); ++a) {
      SCOPED_TRACE(serial.program + "/" + s.epoch_name + "/attack" +
                   std::to_string(a + 1));
      EXPECT_EQ(s.verdicts[a], p.verdicts[a]);
      // Each search is single-threaded and deterministic, so the parallel
      // engine must reproduce the serial exploration exactly — not just the
      // verdict.
      EXPECT_EQ(s.results[a].verdict, p.results[a].verdict);
      EXPECT_EQ(s.results[a].states_explored(),
                p.results[a].states_explored());
      EXPECT_EQ(s.results[a].transitions(), p.results[a].transitions());
      EXPECT_EQ(s.results[a].stats.dedup_hits, p.results[a].stats.dedup_hits);
      EXPECT_EQ(s.results[a].stats.hash_collisions,
                p.results[a].stats.hash_collisions);
      EXPECT_EQ(s.results[a].stats.peak_frontier,
                p.results[a].stats.peak_frontier);
      ASSERT_EQ(s.results[a].witness.size(), p.results[a].witness.size());
      for (std::size_t w = 0; w < s.results[a].witness.size(); ++w)
        EXPECT_EQ(s.results[a].witness[w].to_string(),
                  p.results[a].witness[w].to_string());
    }
  }

  // The headline metric must be bit-identical, not approximately equal:
  // both runs sum the same epoch fractions in the same order.
  for (std::size_t a = 0; a < attacks::modeled_attacks().size(); ++a)
    EXPECT_EQ(serial.vulnerable_fraction(a), parallel.vulnerable_fraction(a))
        << serial.program << " attack " << a + 1;
}

void replay_all_witnesses(const programs::ProgramSpec& spec,
                          const ProgramAnalysis& analysis) {
  const std::vector<std::string> syscalls = spec.syscalls_used();
  ASSERT_EQ(analysis.verdicts.size(), analysis.chrono.rows.size());
  for (std::size_t e = 0; e < analysis.verdicts.size(); ++e) {
    attacks::ScenarioInput input = attacks::scenario_from_epoch(
        analysis.chrono.rows[e], syscalls, spec.scenario_extra_users,
        spec.scenario_extra_groups);
    for (std::size_t a = 0; a < attacks::modeled_attacks().size(); ++a) {
      const rosa::SearchResult& r = analysis.verdicts[e].results[a];
      if (r.verdict != rosa::Verdict::Reachable) continue;
      rosa::Query q =
          attacks::build_attack_query(attacks::modeled_attacks()[a].id, input);
      rosa::Materialized world(q.initial);
      std::string diag;
      EXPECT_TRUE(world.replay(r.witness, &diag))
          << spec.name << "/" << analysis.verdicts[e].epoch_name << "/attack"
          << a + 1 << ": " << diag;
    }
  }
}

class ParallelDiff : public ::testing::TestWithParam<int> {
 public:
  static programs::ProgramSpec spec_for(int which) {
    switch (which) {
      case 0: return programs::make_passwd();
      case 1: return programs::make_su();
      case 2: return programs::make_ping();
      case 3: return programs::make_thttpd();
      case 4: return programs::make_sshd();
      case 5: return programs::make_passwd_refactored();
      default: return programs::make_su_refactored();
    }
  }
};

TEST_P(ParallelDiff, SerialAndParallelPipelinesAgree) {
  programs::ProgramSpec spec = spec_for(GetParam());
  ProgramAnalysis serial = analyze_program(spec, options_with_threads(1));
  ProgramAnalysis parallel = analyze_program(spec, options_with_threads(4));
  expect_equivalent(serial, parallel);
  // Witness validity on the parallel run (the serial path is covered by
  // witness_replay_test.cpp; replaying here proves the parallel engine's
  // witnesses are just as executable).
  replay_all_witnesses(spec, parallel);
}

INSTANTIATE_TEST_SUITE_P(AllSeedPrograms, ParallelDiff,
                         ::testing::Range(0, 7));

TEST(ParallelDiffTest, DefaultThreadCountMatchesSerialToo) {
  // rosa_threads = 0 (hardware_concurrency, the production default) is the
  // path every other pipeline test now exercises; pin its equivalence to
  // the serial engine on one program explicitly.
  programs::ProgramSpec spec = programs::make_passwd();
  ProgramAnalysis serial = analyze_program(spec, options_with_threads(1));
  ProgramAnalysis parallel = analyze_program(spec, options_with_threads(0));
  expect_equivalent(serial, parallel);
}

TEST(ParallelDiffTest, RunQueriesOrdersResultsLikeInputs) {
  // Mixed-difficulty batch: result i must correspond to query i even when
  // later queries finish first.
  using namespace rosa;
  std::vector<Query> queries;
  for (int f = 0; f < 6; ++f)
    queries.push_back(rosa_test::open_query(1, f % 2 ? 0600 : 0000,
                                            goal_file_in_rdfset(1, 2)));
  std::vector<SearchResult> serial = run_queries(queries, {}, 1);
  std::vector<SearchResult> parallel = run_queries(queries, {}, 4);
  ASSERT_EQ(serial.size(), queries.size());
  ASSERT_EQ(parallel.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // Odd-indexed files are mode 0600 (readable by owner): reachable.
    EXPECT_EQ(serial[i].verdict,
              i % 2 ? Verdict::Reachable : Verdict::Unreachable);
    EXPECT_EQ(parallel[i].verdict, serial[i].verdict);
    EXPECT_EQ(parallel[i].states_explored(), serial[i].states_explored());
  }
}

}  // namespace
}  // namespace pa::privanalyzer
