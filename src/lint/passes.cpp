// PrivLint pass implementations. Each pass is a small static analysis over
// one ProgramSpec; shared machinery (the privilege-liveness summaries and
// the refined call graph) comes in through the PassContext.
#include "lint/passes.h"

#include <functional>
#include <map>
#include <utility>

#include "dataflow/solver.h"
#include "dataflow/syscall_reach.h"
#include "support/str.h"

namespace pa::lint::detail {
namespace {

using caps::CapSet;
using caps::Capability;

/// Capabilities SimOS consults when executing `symbol` (mirrors the gates
/// in os/access.cpp and os/syscalls.cpp). A syscall absent from this table
/// never checks a capability, so holding one across it is no use of it.
CapSet syscall_relevant_caps(const std::string& symbol) {
  // Path resolution + read/exec checks.
  if (symbol == "open" || symbol == "access" || symbol == "stat" ||
      symbol == "stat_owner" || symbol == "stat_group")
    return {Capability::DacOverride, Capability::DacReadSearch};
  // Directory writes (plus sticky-bit deletion, which checks Fowner).
  if (symbol == "creat" || symbol == "unlink" || symbol == "link" ||
      symbol == "rename")
    return {Capability::DacOverride, Capability::DacReadSearch,
            Capability::Fowner};
  if (symbol == "chmod" || symbol == "fchmod") return {Capability::Fowner};
  if (symbol == "chown" || symbol == "fchown")
    return {Capability::Chown, Capability::Fowner};
  if (symbol == "chroot") return {Capability::SysChroot};
  if (symbol == "bind") return {Capability::NetBindService};
  if (symbol == "setsockopt") return {Capability::NetAdmin};
  if (symbol == "socket") return {Capability::NetRaw};
  if (symbol == "kill") return {Capability::Kill};
  if (symbol == "setuid" || symbol == "seteuid" || symbol == "setresuid")
    return {Capability::Setuid};
  if (symbol == "setgid" || symbol == "setegid" || symbol == "setresgid" ||
      symbol == "setgroups")
    return {Capability::Setgid};
  return {};
}

/// Transitive closure of syscall_relevant_caps over everything reachable
/// from each function (via the context's — possibly refined — call graph).
std::map<std::string, CapSet> relevant_caps_summaries(const PassContext& ctx) {
  const ir::Module& m = ctx.spec.module;
  std::map<std::string, CapSet> local;
  for (const ir::Function& f : m.functions()) {
    CapSet used;
    for (const ir::BasicBlock& bb : f.blocks())
      for (const ir::Instruction& inst : bb.instructions)
        if (inst.op == ir::Opcode::Syscall)
          used |= syscall_relevant_caps(inst.symbol);
    local[f.name()] = used;
  }
  const ir::CallGraph& cg = ctx.liveness.callgraph();
  std::map<std::string, CapSet> out;
  for (const ir::Function& f : m.functions()) {
    CapSet sum;
    for (const std::string& g : cg.reachable_from(f.name())) {
      auto it = local.find(g);
      if (it != local.end()) sum |= it->second;
    }
    out[f.name()] = sum;
  }
  return out;
}

std::string cap_list(CapSet caps) { return caps.to_string(); }

}  // namespace

// ---------------------------------------------------------------------------
// redundant-priv-remove: a priv_remove names capabilities that a forward
// may-be-permitted analysis proves cannot be in the permitted set there —
// either the launch configuration never granted them or an earlier remove
// already dropped them. Harmless at runtime but a sign the program's mental
// model of its own privileges has drifted.
void check_redundant_priv_remove(const PassContext& ctx,
                                 std::vector<Finding>& out) {
  for (const ir::Function& f : ctx.spec.module.functions()) {
    // Boundary: main starts from the actual launch set; any other function
    // may be called in an unknown context, so assume everything.
    const CapSet boundary =
        f.name() == "main" ? ctx.spec.launch_permitted : CapSet::full();
    std::function<CapSet(const ir::Instruction&, const CapSet&)> transfer =
        [](const ir::Instruction& inst, const CapSet& before) {
          if (inst.op == ir::Opcode::PrivRemove)
            return before - inst.operands[0].caps_value();
          return before;
        };
    std::function<CapSet(const CapSet&, const CapSet&)> join =
        [](const CapSet& a, const CapSet& b) { return a | b; };
    auto facts = dataflow::solve_forward<CapSet>(f, boundary, CapSet{},
                                                 transfer, join);
    for (int b = 0; b < static_cast<int>(f.blocks().size()); ++b) {
      CapSet before = facts.in[static_cast<std::size_t>(b)];
      const auto& insts = f.block(b).instructions;
      for (int i = 0; i < static_cast<int>(insts.size()); ++i) {
        const ir::Instruction& inst = insts[static_cast<std::size_t>(i)];
        if (inst.op == ir::Opcode::PrivRemove) {
          const CapSet removed = inst.operands[0].caps_value();
          const CapSet excess = removed - before;
          if (!excess.empty()) {
            const bool fully = (removed & before).empty();
            Finding finding;
            finding.code = support::DiagCode::RedundantPrivRemove;
            finding.severity = support::Severity::Warning;
            finding.function = f.name();
            finding.block = b;
            finding.instr = i;
            finding.caps = excess;
            finding.message = str::cat(
                fully ? "priv_remove is fully redundant: {"
                      : "priv_remove names capabilities already absent: {",
                cap_list(excess), "} cannot be in the permitted set here");
            finding.hint =
                fully ? "delete this priv_remove"
                      : str::cat("drop {", cap_list(excess),
                                 "} from this priv_remove's operand");
            out.push_back(std::move(finding));
          }
        }
        before = transfer(inst, before);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// never-raised-privilege: the launch configuration grants a capability that
// no raise (reachable from main or from a registered signal handler) ever
// names. The paper's core "permitted but unusable" smell: the grant only
// widens the attack surface.
void check_never_raised_privilege(const PassContext& ctx,
                                  std::vector<Finding>& out) {
  if (!ctx.spec.module.has_function("main")) return;
  CapSet raisable = ctx.liveness.summary("main") | ctx.liveness.handler_caps();
  const CapSet unraised = ctx.spec.launch_permitted - raisable;
  if (unraised.empty()) return;
  Finding finding;
  finding.code = support::DiagCode::NeverRaisedPrivilege;
  finding.severity = support::Severity::Warning;
  finding.caps = unraised;
  finding.message =
      str::cat("permitted capabilities {", cap_list(unraised),
               "} are never raised on any path from main or a signal handler");
  finding.hint = str::cat("drop {", cap_list(unraised),
                          "} from the !permitted launch set");
  out.push_back(std::move(finding));
}

// ---------------------------------------------------------------------------
// raise-without-lower: forward analysis of the may-be-raised set (gen at
// priv_raise, kill at priv_lower / priv_remove); a non-empty set at a `ret`
// means some path returns to an unknown caller with the privilege still
// effective — the bracket discipline leaked. `exit` terminators are fine:
// the process is gone, nothing can use the privilege afterwards.
void check_raise_without_lower(const PassContext& ctx,
                               std::vector<Finding>& out) {
  for (const ir::Function& f : ctx.spec.module.functions()) {
    std::function<CapSet(const ir::Instruction&, const CapSet&)> transfer =
        [](const ir::Instruction& inst, const CapSet& before) {
          switch (inst.op) {
            case ir::Opcode::PrivRaise:
              return before | inst.operands[0].caps_value();
            case ir::Opcode::PrivLower:
            case ir::Opcode::PrivRemove:
              return before - inst.operands[0].caps_value();
            default:
              return before;
          }
        };
    std::function<CapSet(const CapSet&, const CapSet&)> join =
        [](const CapSet& a, const CapSet& b) { return a | b; };
    auto facts = dataflow::solve_forward<CapSet>(f, CapSet{}, CapSet{},
                                                 transfer, join);
    for (int b = 0; b < static_cast<int>(f.blocks().size()); ++b) {
      CapSet before = facts.in[static_cast<std::size_t>(b)];
      const auto& insts = f.block(b).instructions;
      for (int i = 0; i < static_cast<int>(insts.size()); ++i) {
        const ir::Instruction& inst = insts[static_cast<std::size_t>(i)];
        if (inst.op == ir::Opcode::Ret && !before.empty()) {
          Finding finding;
          finding.code = support::DiagCode::RaiseWithoutLower;
          finding.severity = support::Severity::Error;
          finding.function = f.name();
          finding.block = b;
          finding.instr = i;
          finding.caps = before;
          finding.message =
              str::cat("returns with {", cap_list(before),
                       "} possibly still raised (no priv_lower on some path)");
          finding.hint = "insert priv_lower before the ret";
          out.push_back(std::move(finding));
        }
        before = transfer(inst, before);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unreachable-block: plain CFG reachability from the entry block. An
// `unreachable`-only block is idiomatic filler (codegen emits them as trap
// targets), so only blocks containing real instructions are flagged.
void check_unreachable_block(const PassContext& ctx,
                             std::vector<Finding>& out) {
  for (const ir::Function& f : ctx.spec.module.functions()) {
    const int n = static_cast<int>(f.blocks().size());
    if (n == 0) continue;
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<int> work{0};
    seen[0] = true;
    while (!work.empty()) {
      int b = work.back();
      work.pop_back();
      for (int s : f.block(b).successors()) {
        if (!seen[static_cast<std::size_t>(s)]) {
          seen[static_cast<std::size_t>(s)] = true;
          work.push_back(s);
        }
      }
    }
    for (int b = 0; b < n; ++b) {
      if (seen[static_cast<std::size_t>(b)]) continue;
      const auto& insts = f.block(b).instructions;
      const bool only_trap =
          insts.size() == 1 && insts[0].op == ir::Opcode::Unreachable;
      if (insts.empty() || only_trap) continue;
      Finding finding;
      finding.code = support::DiagCode::UnreachableBlock;
      finding.severity = support::Severity::Warning;
      finding.function = f.name();
      finding.block = b;
      finding.message = str::cat("block '", f.block(b).label,
                                 "' is unreachable from the entry block");
      finding.hint = "delete the block or fix the branch that should reach it";
      out.push_back(std::move(finding));
    }
  }
}

// ---------------------------------------------------------------------------
// empty-indirect-targets: a callind whose refined target set is empty — the
// pointer register can never hold a FuncRef of matching arity, so the call
// aborts at runtime if ever executed. Only meaningful under the Refined
// policy (Conservative has no per-site sets).
void check_empty_indirect_targets(const PassContext& ctx,
                                  std::vector<Finding>& out) {
  const ir::CallGraph& cg = ctx.liveness.callgraph();
  if (cg.policy() != ir::IndirectCallPolicy::Refined) return;
  for (const ir::Function& f : ctx.spec.module.functions()) {
    for (int b = 0; b < static_cast<int>(f.blocks().size()); ++b) {
      const auto& insts = f.block(b).instructions;
      for (int i = 0; i < static_cast<int>(insts.size()); ++i) {
        const ir::Instruction& inst = insts[static_cast<std::size_t>(i)];
        if (inst.op != ir::Opcode::CallInd) continue;
        const int reg = inst.operands[0].reg_index();
        if (!cg.refined_targets(f.name(), reg).empty()) continue;
        Finding finding;
        finding.code = support::DiagCode::EmptyIndirectTargets;
        finding.severity = support::Severity::Error;
        finding.function = f.name();
        finding.block = b;
        finding.instr = i;
        finding.message = str::cat(
            "indirect call through %", reg,
            " has no feasible target (no matching-arity function address "
            "ever flows here); executing it would abort");
        finding.hint = "fix the function-pointer dataflow or the arity";
        out.push_back(std::move(finding));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unused-privilege-epoch: for every priv_raise and every capability it
// names, walk forward until a lower/remove covering that capability; if no
// instruction in the walked region can consult the capability (a syscall
// whose SimOS gate checks it, directly or through a call's transitive
// summary), the epoch raises a privilege for nothing — pure exposure. This
// is the static analogue of ROSA marking a privilege unused in an epoch.
void check_unused_privilege_epoch(const PassContext& ctx,
                                  std::vector<Finding>& out) {
  const auto relevant = relevant_caps_summaries(ctx);
  const ir::CallGraph& cg = ctx.liveness.callgraph();

  auto instr_uses = [&](const ir::Instruction& inst, Capability c) -> bool {
    switch (inst.op) {
      case ir::Opcode::Syscall:
        if (syscall_relevant_caps(inst.symbol).contains(c)) return true;
        // signal(n, @h): the handler may run inside this epoch.
        if (inst.symbol == "signal") {
          for (const ir::Operand& op : inst.operands)
            if (op.kind() == ir::Operand::Kind::Func) {
              auto it = relevant.find(op.str_value());
              if (it != relevant.end() && it->second.contains(c)) return true;
            }
        }
        return false;
      case ir::Opcode::Call: {
        auto it = relevant.find(inst.symbol);
        return it != relevant.end() && it->second.contains(c);
      }
      default:
        // CallInd is handled per-function below (the refined target lookup
        // needs the enclosing function's name).
        return false;
    }
  };

  for (const ir::Function& f : ctx.spec.module.functions()) {
    auto callind_uses = [&](const ir::Instruction& inst, Capability c) {
      const auto& targets =
          cg.policy() == ir::IndirectCallPolicy::Refined
              ? cg.refined_targets(f.name(), inst.operands[0].reg_index())
              : cg.address_taken();
      for (const std::string& t : targets) {
        auto it = relevant.find(t);
        if (it != relevant.end() && it->second.contains(c)) return true;
      }
      return false;
    };
    auto uses = [&](const ir::Instruction& inst, Capability c) {
      if (inst.op == ir::Opcode::CallInd) return callind_uses(inst, c);
      return instr_uses(inst, c);
    };
    auto covers = [](const ir::Instruction& inst, Capability c) {
      return (inst.op == ir::Opcode::PrivLower ||
              inst.op == ir::Opcode::PrivRemove) &&
             inst.operands[0].caps_value().contains(c);
    };

    for (int rb = 0; rb < static_cast<int>(f.blocks().size()); ++rb) {
      const auto& rinsts = f.block(rb).instructions;
      for (int ri = 0; ri < static_cast<int>(rinsts.size()); ++ri) {
        const ir::Instruction& raise = rinsts[static_cast<std::size_t>(ri)];
        if (raise.op != ir::Opcode::PrivRaise) continue;
        CapSet unused;
        for (Capability c : raise.operands[0].caps_value().members()) {
          // Walk the epoch: instructions after the raise, across the CFG,
          // pruning paths at a covering lower/remove.
          bool used = false;
          std::vector<std::pair<int, int>> work{{rb, ri + 1}};
          std::vector<bool> visited(f.blocks().size(), false);
          while (!work.empty() && !used) {
            auto [b, start] = work.back();
            work.pop_back();
            const auto& insts = f.block(b).instructions;
            bool fell_through = true;
            for (int i = start; i < static_cast<int>(insts.size()); ++i) {
              const ir::Instruction& inst = insts[static_cast<std::size_t>(i)];
              if (uses(inst, c)) {
                used = true;
                fell_through = false;
                break;
              }
              if (covers(inst, c)) {
                fell_through = false;
                break;
              }
            }
            if (used || !fell_through) continue;
            for (int s : f.block(b).successors()) {
              if (!visited[static_cast<std::size_t>(s)]) {
                visited[static_cast<std::size_t>(s)] = true;
                work.push_back({s, 0});
              }
            }
          }
          if (!used) unused = unused.with(c);
        }
        if (unused.empty()) continue;
        Finding finding;
        finding.code = support::DiagCode::UnusedPrivilegeEpoch;
        finding.severity = support::Severity::Warning;
        finding.function = f.name();
        finding.block = rb;
        finding.instr = ri;
        finding.caps = unused;
        finding.message = str::cat(
            "epoch raises {", cap_list(unused),
            "} but nothing before the matching lower can use it");
        finding.hint = str::cat("drop {", cap_list(unused),
                                "} from this priv_raise");
        out.push_back(std::move(finding));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// overbroad-epoch-syscalls: at the program point after a priv_remove in
// @main, the permitted set may retain capabilities that privilege liveness
// proves are never raised again — yet syscalls gated on those capabilities
// stay statically reachable (dataflow::SyscallReach, including registered
// signal handlers). Legitimate execution never needs the pairing, but a
// hijacked thread can raise the still-permitted capability and drive the
// still-reachable syscall: exactly the surface an EpochFilter or a wider
// priv_remove would close. Anchored at priv_remove sites in @main because
// only there is the permitted set known (other functions run in unknown
// caller contexts).
void check_overbroad_epoch_syscalls(const PassContext& ctx,
                                    std::vector<Finding>& out) {
  const ir::Module& m = ctx.spec.module;
  if (!m.has_function("main")) return;
  const ir::Function& f = m.function("main");
  bool has_remove = false;
  for (const ir::BasicBlock& bb : f.blocks())
    for (const ir::Instruction& inst : bb.instructions)
      if (inst.op == ir::Opcode::PrivRemove) has_remove = true;
  if (!has_remove) return;

  const dataflow::SyscallReach reach(m, ctx.options.indirect_calls);

  // Forward may-permitted facts (same lattice as redundant-priv-remove).
  std::function<CapSet(const ir::Instruction&, const CapSet&)> transfer =
      [](const ir::Instruction& inst, const CapSet& before) {
        if (inst.op == ir::Opcode::PrivRemove)
          return before - inst.operands[0].caps_value();
        return before;
      };
  std::function<CapSet(const CapSet&, const CapSet&)> join =
      [](const CapSet& a, const CapSet& b) { return a | b; };
  const auto permitted = dataflow::solve_forward<CapSet>(
      f, ctx.spec.launch_permitted, CapSet{}, transfer, join);

  // Backward privilege liveness: caps that may still be raised later
  // (handler caps stay live to exit, matching AutoPriv's semantics).
  const auto live = ctx.liveness.analyze("main", ctx.liveness.handler_caps());

  for (int b = 0; b < static_cast<int>(f.blocks().size()); ++b) {
    CapSet before = permitted.in[static_cast<std::size_t>(b)];
    const auto live_before = ctx.liveness.instruction_facts(
        "main", b, live.out[static_cast<std::size_t>(b)]);
    const auto& insts = f.block(b).instructions;
    for (int i = 0; i < static_cast<int>(insts.size()); ++i) {
      const ir::Instruction& inst = insts[static_cast<std::size_t>(i)];
      const CapSet after = transfer(inst, before);
      before = after;
      if (inst.op != ir::Opcode::PrivRemove) continue;
      const CapSet dead = after - live_before[static_cast<std::size_t>(i) + 1];
      if (dead.empty()) continue;
      std::set<std::string> reachable = reach.from_point(f.name(), b,
                                                         static_cast<std::size_t>(i) + 1);
      reachable.insert(reach.handler_syscalls().begin(),
                       reach.handler_syscalls().end());
      CapSet overbroad;
      std::string gated;
      for (const std::string& s : reachable) {
        const CapSet rel = syscall_relevant_caps(s) & dead;
        if (rel.empty()) continue;
        overbroad |= rel;
        if (!gated.empty()) gated += ", ";
        gated += s;
      }
      if (overbroad.empty()) continue;
      Finding finding;
      finding.code = support::DiagCode::OverbroadEpochSyscalls;
      finding.severity = support::Severity::Warning;
      finding.function = f.name();
      finding.block = b;
      finding.instr = i;
      finding.caps = overbroad;
      finding.message = str::cat(
          "epoch after this priv_remove keeps {", cap_list(overbroad),
          "} permitted but never raises it again, while syscalls gated on "
          "it stay reachable (", gated, ")");
      finding.hint = str::cat("add {", cap_list(overbroad),
                              "} to this priv_remove, or enforce a syscall "
                              "filter (--filters=enforce)");
      out.push_back(std::move(finding));
    }
  }
}

}  // namespace pa::lint::detail
