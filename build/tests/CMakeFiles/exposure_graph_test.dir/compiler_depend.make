# Empty compiler generated dependencies file for exposure_graph_test.
# This may be replaced when dependencies are built.
