// Model of shadow-utils passwd 4.1.5.1 (Table II), privilege-annotated in
// the AutoPriv style, plus the §VII-D.1 security-refactored variant.
//
// Privilege lifecycle of the stock program (§VII-C):
//   1. startup / argument parsing                       (all 5 caps live)
//   2. getspnam(): CAP_DAC_READ_SEARCH around /etc/shadow read
//   3. password dialogue + hashing — the bulk of execution
//   4. setuid(0) via CAP_SETUID (ignore unexpected signals)
//   5. shadow-database update: CAP_DAC_OVERRIDE (lock file + replace
//      database), stat()+chown() via CAP_CHOWN to preserve the owner,
//      chmod() via CAP_FOWNER, then rename into place
//
// The refactored variant (Table V) instead moves its credentials to the
// special `etc` user immediately (setresuid while CAP_SETUID is live,
// setegid(shadow) while CAP_SETGID is live) and then needs no privilege at
// all for the database update, since `etc` owns /etc and /etc/shadow.
#include "programs/common.h"

namespace pa::programs {

using namespace detail;

namespace {

// Epoch weights chosen so the per-epoch percentages match Table III
// (total ~69.7k dynamic instructions, as in the paper).
constexpr int kStartupWork = 2600;    // passwd_priv1  ~3.8%
constexpr int kDialogueWork = 41100;  // passwd_priv3 ~59.2%
constexpr int kPostRootWork = 36;     // passwd_priv2 ~0.06%
constexpr int kUpdateWork = 25400;    // passwd_priv4 ~36.8%
constexpr int kCleanupWork = 150;     // passwd_priv5 ~0.23%

void emit_become_root(IRBuilder& b) {
  b.begin_function("become_root", 0);
  b.priv_raise({Capability::Setuid});
  b.syscall("setuid", {B::i(caps::kRootUid)});
  b.work(kPostRootWork);  // the paper's brief passwd_priv2 window
  b.priv_lower({Capability::Setuid});
  b.ret(B::i(0));
  b.end_function();
}

void emit_update_shadow(IRBuilder& b) {
  b.begin_function("update_shadow", 0);
  // Lock out concurrent passwd runs, then build the replacement database.
  b.priv_raise({Capability::DacOverride});
  int lock = b.syscall("open", {B::s("/etc/.pwd.lock"),
                                B::i(SyscallEncoding::kWrite |
                                     SyscallEncoding::kCreate)});
  emit_work(b, "upd1", kUpdateWork / 2);
  int nfd = b.syscall("open", {B::s("/etc/nshadow"),
                               B::i(SyscallEncoding::kWrite |
                                    SyscallEncoding::kCreate |
                                    SyscallEncoding::kTrunc)});
  b.syscall("write", {B::r(nfd), B::s("root:$6$hash0\nuser:$6$newhash\n")});
  b.syscall("close", {B::r(nfd)});
  emit_work(b, "upd2", kUpdateWork / 2);
  // passwd makes no assumption about who owns the shadow database: it
  // stat()s the old file and chown()s the new one to match (§VII-C).
  int owner = b.syscall("stat_owner", {B::s("/etc/shadow")});
  int group = b.syscall("stat_group", {B::s("/etc/shadow")});
  b.priv_raise({Capability::Chown});
  b.syscall("chown", {B::s("/etc/nshadow"), B::r(owner), B::r(group)});
  b.priv_lower({Capability::Chown});
  b.priv_raise({Capability::Fowner});
  b.syscall("chmod", {B::s("/etc/nshadow"), B::i(0640)});
  b.priv_lower({Capability::Fowner});
  b.syscall("rename", {B::s("/etc/nshadow"), B::s("/etc/shadow")});
  b.syscall("close", {B::r(lock)});
  b.syscall("unlink", {B::s("/etc/.pwd.lock")});
  b.priv_lower({Capability::DacOverride});
  b.ret(B::i(0));
  b.end_function();
}

}  // namespace

ProgramSpec make_passwd() {
  ProgramSpec spec;
  spec.name = "passwd";
  spec.description = "Utility to change user passwords";
  spec.launch_permitted = {Capability::DacReadSearch, Capability::DacOverride,
                           Capability::Setuid, Capability::Chown,
                           Capability::Fowner};
  spec.launch_creds = caps::Credentials::of_user(kUser, kUserGid);
  spec.module = ir::Module("passwd");

  IRBuilder b(spec.module);
  emit_getspnam(b, "lib_getspnam", /*privileged=*/true);
  emit_become_root(b);
  emit_update_shadow(b);

  b.begin_function("main", 0);
  b.syscall("getuid", {});
  // Signal bookkeeping ("ignore unexpected signals"): probe the session
  // leader. Puts kill(2) in the program's syscall surface, as in the paper.
  b.syscall("kill", {B::i(99999), B::i(0)});
  emit_work(b, "startup", kStartupWork);
  b.call("lib_getspnam");
  // CAP_DAC_READ_SEARCH is dead here; AutoPriv removes it.
  emit_work(b, "dialogue", kDialogueWork);
  b.call("become_root");
  // CAP_SETUID dead -> removed right after the call (priv4 begins).
  b.call("update_shadow");
  // All remaining caps dead -> removed.
  b.work(kCleanupWork);
  b.exit(B::i(0));
  b.end_function();

  spec.module.recompute_address_taken();
  return spec;
}

ProgramSpec make_passwd_refactored() {
  ProgramSpec spec;
  spec.name = "passwdRef";
  spec.description = "passwd refactored to change credentials early (§VII-D.1)";
  spec.launch_permitted = {Capability::Setuid, Capability::Setgid};
  spec.launch_creds = caps::Credentials::of_user(kUser, kUserGid);
  spec.scenario_extra_users = {kEtcUser};
  spec.scenario_extra_groups = {kShadowGid};
  spec.refactored_world = true;
  spec.module = ir::Module("passwdRef");

  IRBuilder b(spec.module);
  emit_getspnam(b, "lib_getspnam", /*privileged=*/false);

  // Epoch weights per Table V (total ~68.9k).
  constexpr int kRefStartupWork = 2620;  // priv1 ~3.8%
  constexpr int kRefSwitchWork = 36;     // priv2/priv3/priv4: tiny windows
  constexpr int kRefBulkWork = 66100;    // priv5 ~96%

  b.begin_function("main", 0);
  b.syscall("getuid", {});
  // Signal bookkeeping ("ignore unexpected signals"): probe the session
  // leader. Puts kill(2) in the program's syscall surface, as in the paper.
  b.syscall("kill", {B::i(99999), B::i(0)});
  emit_work(b, "startup", kRefStartupWork);
  // Change credentials early: real+effective uid -> etc, saved keeps the
  // invoker so identification-by-ruid still works.
  b.priv_raise({Capability::Setuid});
  b.syscall("setresuid", {B::i(kEtcUser), B::i(kEtcUser), B::i(-1)});
  b.priv_lower({Capability::Setuid});
  b.work(kRefSwitchWork);  // priv3: CAP_SETGID only
  b.priv_raise({Capability::Setgid});
  b.syscall("setegid", {B::i(kShadowGid)});
  b.work(kRefSwitchWork);  // priv4: egid shadow, CAP_SETGID still permitted
  b.priv_lower({Capability::Setgid});
  // Both caps dead -> removed; everything below runs with empty permitted.
  b.call("lib_getspnam");
  emit_work(b, "bulk", kRefBulkWork);
  // Database update needs no privilege: euid `etc` owns /etc and the files.
  int lock = b.syscall("open", {B::s("/etc/.pwd.lock"),
                                B::i(SyscallEncoding::kWrite |
                                     SyscallEncoding::kCreate)});
  int nfd = b.syscall("open", {B::s("/etc/nshadow"),
                               B::i(SyscallEncoding::kWrite |
                                    SyscallEncoding::kCreate |
                                    SyscallEncoding::kTrunc)});
  b.syscall("write", {B::r(nfd), B::s("root:$6$hash0\nuser:$6$newhash\n")});
  b.syscall("close", {B::r(nfd)});
  b.syscall("chmod", {B::s("/etc/nshadow"), B::i(0640)});
  b.syscall("rename", {B::s("/etc/nshadow"), B::s("/etc/shadow")});
  b.syscall("close", {B::r(lock)});
  b.syscall("unlink", {B::s("/etc/.pwd.lock")});
  b.exit(B::i(0));
  b.end_function();

  spec.module.recompute_address_taken();
  return spec;
}

}  // namespace pa::programs
