#include "attacks/attacks.h"

#include <algorithm>
#include <set>

#include "rosa/query.h"
#include "support/error.h"
#include "support/str.h"

namespace pa::attacks {
namespace {

using rosa::Message;
using rosa::Query;
using rosa::State;

/// Syscalls relevant to each attack (the per-attack input tailoring of
/// §VII-A): file attacks use the file and credential syscalls, the bind
/// attack uses the socket syscalls, the kill attack uses kill plus the
/// credential syscalls (CAP_SETUID lets the attacker become the victim's
/// uid and pass the kill(2) permission check).
const std::set<std::string>& relevant_syscalls(AttackId attack) {
  static const std::set<std::string> file_attack = {
      "open",   "chmod",  "fchmod",    "chown",  "fchown",    "unlink",
      "rename", "creat",  "link",      "setuid", "seteuid",   "setresuid",
      "setgid", "setegid", "setresgid"};
  static const std::set<std::string> bind_attack = {"socket", "bind",
                                                    "connect"};
  static const std::set<std::string> kill_attack = {
      "kill", "setuid", "seteuid", "setresuid"};
  switch (attack) {
    case AttackId::ReadDevMem:
    case AttackId::WriteDevMem:
      return file_attack;
    case AttackId::BindPrivilegedPort:
      return bind_attack;
    case AttackId::KillServer:
      return kill_attack;
  }
  PA_UNREACHABLE("attack id");
}

void add_messages(Query& q, const ScenarioInput& in, AttackId attack) {
  const std::set<std::string>& relevant = relevant_syscalls(attack);
  const caps::CapSet privs = in.permitted;
  for (const std::string& name : in.syscalls) {
    if (!relevant.contains(name)) continue;
    auto sys = rosa::parse_sys(name);
    if (!sys) continue;  // syscall exists but is outside ROSA's model
    Message m;
    m.sys = *sys;
    m.proc = kVictimProc;
    m.privs = privs;
    switch (*sys) {
      case rosa::Sys::Open:
        m.args = {rosa::kWild,
                  attack == AttackId::WriteDevMem ? rosa::kAccWrite
                                                  : rosa::kAccRead};
        break;
      case rosa::Sys::Chmod:
      case rosa::Sys::Fchmod:
        m.args = {rosa::kWild, 0777};
        break;
      case rosa::Sys::Chown:
      case rosa::Sys::Fchown:
        m.args = {rosa::kWild, rosa::kWild, rosa::kWild};
        break;
      case rosa::Sys::Unlink:
        m.args = {rosa::kWild};
        break;
      case rosa::Sys::Rename:
        m.args = {rosa::kWild, rosa::kWild};
        break;
      case rosa::Sys::Creat:
        m.args = {rosa::kWild, 0666};
        break;
      case rosa::Sys::Link:
        m.args = {rosa::kWild, rosa::kWild};
        break;
      case rosa::Sys::Setuid:
      case rosa::Sys::Seteuid:
      case rosa::Sys::Setgid:
      case rosa::Sys::Setegid:
        m.args = {rosa::kWild};
        break;
      case rosa::Sys::Setresuid:
      case rosa::Sys::Setresgid:
        m.args = {rosa::kWild, rosa::kWild, rosa::kWild};
        break;
      case rosa::Sys::Kill:
        m.args = {kServerProc, 9};
        break;
      case rosa::Sys::Socket:
        m.args = {0};
        break;
      case rosa::Sys::Bind:
        m.args = {rosa::kWild, rosa::kWild};
        break;
      case rosa::Sys::Connect:
        m.args = {rosa::kWild, rosa::kWild};
        break;
    }
    q.messages.push_back(std::move(m));
  }
}

void add_pools(State& st, const ScenarioInput& in, AttackId attack) {
  std::set<int> users = {caps::kRootUid, in.creds.uid.real,
                         in.creds.uid.effective, in.creds.uid.saved};
  std::set<int> groups = {caps::kRootGid, kKmemGid, in.creds.gid.real,
                          in.creds.gid.effective, in.creds.gid.saved};
  if (attack == AttackId::KillServer) users.insert(kServerUid);
  for (int u : in.extra_users) users.insert(u);
  for (int g : in.extra_groups) groups.insert(g);
  st.set_users(std::vector<int>(users.begin(), users.end()));
  st.set_groups(std::vector<int>(groups.begin(), groups.end()));
}

}  // namespace

const std::vector<AttackInfo>& modeled_attacks() {
  static const std::vector<AttackInfo> attacks = {
      {AttackId::ReadDevMem, "read-devmem",
       "Read from /dev/mem to steal application data"},
      {AttackId::WriteDevMem, "write-devmem",
       "Write to /dev/mem to corrupt application data"},
      {AttackId::BindPrivilegedPort, "bind-privport",
       "Bind to a privileged port to masquerade as a server"},
      {AttackId::KillServer, "kill-server",
       "Send a SIGKILL signal to kill the sshd server"},
  };
  return attacks;
}

rosa::Query build_attack_query(AttackId attack, const ScenarioInput& in) {
  Query q;

  rosa::ProcObj victim;
  victim.id = kVictimProc;
  victim.uid = in.creds.uid;
  victim.gid = in.creds.gid;
  victim.supplementary = in.creds.supplementary;
  q.initial.procs.push_back(std::move(victim));

  switch (attack) {
    case AttackId::ReadDevMem:
    case AttackId::WriteDevMem: {
      // /dev (root:root 0755) containing /dev/mem (root:kmem 0640).
      q.initial.dirs.push_back(rosa::DirObj{
          kDevDir,
          os::FileMeta{caps::kRootUid, caps::kRootGid, os::Mode(0755)},
          kDevMemFile});
      q.initial.files.push_back(rosa::FileObj{
          kDevMemFile,
          os::FileMeta{caps::kRootUid, kKmemGid, os::Mode(0640)}});
      // The /etc files every evaluated program touches; wildcard file
      // arguments range over these too, as in the paper's input files.
      q.initial.files.push_back(rosa::FileObj{
          kShadowFile,
          os::FileMeta{caps::kRootUid, 42, os::Mode(0640)}});
      q.initial.files.push_back(rosa::FileObj{
          kPasswdFile,
          os::FileMeta{caps::kRootUid, caps::kRootGid, os::Mode(0644)}});
      q.initial.dirs.push_back(rosa::DirObj{
          kEtcDir,
          os::FileMeta{caps::kRootUid, caps::kRootGid, os::Mode(0755)},
          kShadowFile});
      q.initial.dirs.push_back(rosa::DirObj{
          kEtcDir2,
          os::FileMeta{caps::kRootUid, caps::kRootGid, os::Mode(0755)},
          kPasswdFile});
      q.initial.set_name(kDevDir, "/dev");
      q.initial.set_name(kDevMemFile, "/dev/mem");
      q.initial.set_name(kShadowFile, "/etc/shadow");
      q.initial.set_name(kPasswdFile, "/etc/passwd");
      q.initial.set_name(kEtcDir, "/etc");
      q.initial.set_name(kEtcDir2, "/etc");
      q.goal = attack == AttackId::ReadDevMem
                   ? rosa::goal_file_in_rdfset(kVictimProc, kDevMemFile)
                   : rosa::goal_file_in_wrfset(kVictimProc, kDevMemFile);
      q.description = attack == AttackId::ReadDevMem
                          ? "victim opens /dev/mem for reading"
                          : "victim opens /dev/mem for writing";
      break;
    }
    case AttackId::BindPrivilegedPort:
      q.goal = rosa::goal_privileged_port_bound(kVictimProc);
      q.description = "victim binds a socket to a privileged port";
      break;
    case AttackId::KillServer: {
      rosa::ProcObj server;
      server.id = kServerProc;
      server.uid = caps::IdTriple{kServerUid, kServerUid, kServerUid};
      server.gid = caps::IdTriple{kServerUid, kServerUid, kServerUid};
      q.initial.procs.push_back(std::move(server));
      q.goal = rosa::goal_proc_terminated(kServerProc);
      q.description = "critical server terminated by SIGKILL";
      break;
    }
  }

  add_pools(q.initial, in, attack);
  add_messages(q, in, attack);
  q.attacker = in.attacker;
  q.initial.normalize();
  return q;
}

}  // namespace pa::attacks
