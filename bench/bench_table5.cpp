// Regenerates the paper's Table V: the refactored passwd and su through the
// same pipeline. The refactored programs' special users enlarge ROSA's
// wildcard pools, so some impossible-attack searches exceed the resource
// budget — rendered T, the analogue of the paper's hourglass (their Maude
// searches hit a 5-hour limit; §VII-D argues limit-hitting searches are
// almost certainly invulnerable epochs).
#include <iostream>

#include "privanalyzer/export.h"
#include "privanalyzer/render.h"
#include "support/str.h"

using namespace pa;

int main() {
  privanalyzer::PipelineOptions opts;
  opts.rosa_limits.max_states = 1'000'000;

  std::vector<privanalyzer::ProgramAnalysis> analyses =
      privanalyzer::analyze_refactored(opts);

  std::cout << privanalyzer::render_efficacy_table(
      analyses,
      "Table V: Refactored Programs (V vulnerable / x safe / T resource "
      "limit == paper's hourglass)");

  std::cout << "\nHeadline numbers (paper: refactored passwd invulnerable "
               "for ~96%, refactored su for ~99%\ncounting limit-hit epochs "
               "as presumed-safe):\n";
  for (const privanalyzer::ProgramAnalysis& a : analyses) {
    privanalyzer::ExposureSummary s = privanalyzer::exposure_of(a);
    std::cout << "  " << a.program << ": any-attack "
              << str::percent(s.any_attack) << " of execution ("
              << str::percent(1.0 - s.any_attack) << " safe-or-presumed)\n";
  }

  // The paper's hourglass cells: its Maude searches hit a 5-hour wall on
  // the largest impossible-attack spaces (refactored su, CAP_SETGID /
  // empty epochs, attacks 1-2). The explicit-state checker exhausts those
  // same spaces outright — the T verdicts above never trigger at the full
  // budget — so the bounded-verdict path is demonstrated here by rerunning
  // the paper's hourglass cells under a deliberately small budget.
  std::cout << "\nBounded-budget demonstration (max_states = 1000, the "
               "analogue of the paper's 5-hour cap):\n";
  const programs::ProgramSpec su_ref = programs::make_su_refactored();
  const auto syscalls = su_ref.syscalls_used();
  rosa::SearchLimits tiny;
  tiny.max_states = 1'000;
  const privanalyzer::ProgramAnalysis& su_a = analyses[1];
  for (std::size_t i = 0; i < su_a.chrono.rows.size(); ++i) {
    const auto& row = su_a.chrono.rows[i];
    if (!row.key.permitted.empty() &&
        row.key.permitted != caps::CapSet{caps::Capability::Setgid})
      continue;
    attacks::ScenarioInput in = attacks::scenario_from_epoch(
        row, syscalls, su_ref.scenario_extra_users,
        su_ref.scenario_extra_groups);
    rosa::SearchResult r;
    attacks::CellVerdict v =
        attacks::run_attack(attacks::AttackId::WriteDevMem, in, tiny, &r);
    std::cout << "  " << str::pad_right(row.name, 16) << " write-devmem: "
              << attacks::cell_symbol(v) << " (" << r.states_explored()
              << " states, " << str::fixed(r.seconds() * 1000, 2) << " ms)\n";
  }
  std::cout << "\nCSV (for plotting):\n"
            << privanalyzer::efficacy_to_csv(analyses);
  return 0;
}
