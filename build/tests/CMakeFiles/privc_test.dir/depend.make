# Empty dependencies file for privc_test.
# This may be replaced when dependencies are built.
