#include "support/faultpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "support/str.h"

namespace pa::support {
namespace faultpoint {
namespace {

/// The canonical compiled-in points (kept in sync with the PA_FAULTPOINT
/// sites; the soak test fails if one is registered but never reachable from
/// the pipeline). Ad-hoc names can be armed and hit but are never listed.
constexpr const char* kCompiledInPoints[] = {
    "loader.load_program",  // privanalyzer/loader.cpp: text -> ProgramSpec
    "verifier.verify",      // ir/verifier.cpp: verify_or_throw entry
    "world.make",           // programs/world.cpp: both world factories
    "thread_pool.task",     // support/thread_pool.cpp: task boundary
    "rosa.search",          // rosa/search.cpp: search() entry
    "rosa.cache_load",      // privanalyzer/pipeline.cpp: --rosa-cache load
    "rosa.cache_store",     // rosa/cache.cpp: persistent-file I/O attempt
                            // (recoverable: one fault = one retried attempt)
    "rosa.spill_io",        // rosa/frontier.cpp: spill dir/chunk I/O
    "daemon.accept",        // support/socket.cpp: listener accept path
    "daemon.read",          // support/socket.cpp: connection frame read
    "daemon.write",         // support/socket.cpp: connection frame write
};

struct PointState {
  bool is_armed = false;
  std::uint64_t fire_on_hit = 0;  // 1-based, counted from arming
  std::uint64_t hits = 0;         // hits since arming
  bool compiled_in = false;       // listed by registered_points()
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState> points;  // sorted => deterministic order
  Registry() {
    for (const char* p : kCompiledInPoints)
      points.emplace(p, PointState{false, 0, 0, true});
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Fast-path gate: number of currently armed points. hit() returns after one
/// relaxed load when zero, so inert points cost nothing measurable even in
/// the ROSA search entry.
std::atomic<int> g_armed_count{0};

Stage stage_from_point(const std::string& name) {
  if (name.starts_with("loader.")) return Stage::Loader;
  if (name.starts_with("verifier.")) return Stage::Verifier;
  if (name.starts_with("world.")) return Stage::World;
  if (name.starts_with("rosa.")) return Stage::Rosa;
  if (name.starts_with("thread_pool.")) return Stage::Pipeline;
  if (name.starts_with("daemon.")) return Stage::Daemon;
  return Stage::Unknown;
}

/// Arm from PA_FAULTPOINTS once before main() so CLI users need no code.
/// Malformed entries are ignored here (throwing during static init would
/// terminate); explicit arm_from_env() calls surface them as StageErrors.
const int g_env_armed = [] {
  try {
    return arm_from_env();
  } catch (const Error&) {
    return 0;
  }
}();

}  // namespace

void hit(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return;
  Registry& r = registry();
  std::unique_lock<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end() || !it->second.is_armed) return;
  PointState& st = it->second;
  if (++st.hits != st.fire_on_hit) return;
  st = PointState{false, 0, 0, st.compiled_in};  // single-shot: firing disarms
  g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  lock.unlock();
  throw FaultInjected(name);
}

void arm(const std::string& name, std::uint64_t nth) {
  if (nth == 0) nth = 1;
  Registry& r = registry();
  std::unique_lock<std::mutex> lock(r.mu);
  PointState& st = r.points[name];  // ad-hoc names armable too
  if (!st.is_armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  st = PointState{true, nth, 0, st.compiled_in};
}

void disarm(const std::string& name) {
  Registry& r = registry();
  std::unique_lock<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end() || !it->second.is_armed) return;
  it->second = PointState{false, 0, 0, it->second.compiled_in};
  g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  std::unique_lock<std::mutex> lock(r.mu);
  for (auto& [name, st] : r.points) {
    if (st.is_armed) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    st = PointState{false, 0, 0, st.compiled_in};
  }
}

bool armed(const std::string& name) {
  Registry& r = registry();
  std::unique_lock<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  return it != r.points.end() && it->second.is_armed;
}

std::vector<std::string> registered_points() {
  Registry& r = registry();
  std::unique_lock<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  out.reserve(r.points.size());
  for (const auto& [name, st] : r.points)
    if (st.compiled_in) out.push_back(name);
  return out;
}

int arm_from_env() {
  const char* env = std::getenv("PA_FAULTPOINTS");
  if (!env || !*env) return 0;
  int count = 0;
  for (const std::string& raw : str::split(env, ',')) {
    std::string_view entry = str::trim(raw);
    if (entry.empty()) continue;
    std::uint64_t nth = 1;
    std::string name(entry);
    if (auto colon = entry.rfind(':'); colon != std::string_view::npos) {
      name = std::string(entry.substr(0, colon));
      std::string n(entry.substr(colon + 1));
      try {
        nth = std::stoull(n);
      } catch (const std::exception&) {
        fail_stage(Stage::Pipeline, DiagCode::BadFieldValue, "",
                   str::cat("PA_FAULTPOINTS: bad hit count '", n, "' in '",
                            std::string(entry), "'"));
      }
    }
    arm(name, nth);
    ++count;
  }
  return count;
}

}  // namespace faultpoint

FaultInjected::FaultInjected(const std::string& point)
    : StageError(Diagnostic{
          faultpoint::stage_from_point(point), Severity::Error,
          DiagCode::FaultInjected, "",
          str::cat("injected fault at point '", point, "'")}),
      point_(point) {}

}  // namespace pa::support
