#include "vm/syscall_bridge.h"

#include "support/error.h"
#include "support/str.h"

namespace pa::vm {
namespace {

std::int64_t result_of(os::SysResult r) {
  return r.ok() ? r.value() : -static_cast<std::int64_t>(r.error());
}

std::int64_t as_int(std::span<const ir::RtValue> args, std::size_t i) {
  PA_CHECK(i < args.size(), "syscall: missing integer argument");
  return ir::rt_as_int(args[i]);
}

const std::string& as_str(std::span<const ir::RtValue> args, std::size_t i) {
  PA_CHECK(i < args.size(), "syscall: missing string argument");
  return ir::rt_as_str(args[i]);
}

}  // namespace

std::int64_t dispatch_syscall(os::Kernel& k, os::Pid pid,
                              const std::string& name,
                              std::span<const ir::RtValue> args) {
  using os::Mode;

  // Per-epoch syscall filters gate the whole table: a denied name never
  // reaches its sys_* handler (and under FilterAction::Kill the process is
  // already a zombie by the time we return).
  if (auto denied = k.filter_check(pid, name)) return *denied;

  if (name == "open") {
    unsigned flags = static_cast<unsigned>(as_int(args, 1));
    Mode mode = args.size() > 2
                    ? Mode(static_cast<std::uint16_t>(as_int(args, 2)))
                    : Mode(0644);
    return result_of(k.sys_open(pid, as_str(args, 0), flags, mode));
  }
  if (name == "close") return result_of(k.sys_close(pid, static_cast<int>(as_int(args, 0))));
  if (name == "dup") return result_of(k.sys_dup(pid, static_cast<int>(as_int(args, 0))));
  if (name == "access")
    return result_of(k.sys_access(pid, as_str(args, 0),
                                  static_cast<int>(as_int(args, 1))));
  if (name == "umask")
    return result_of(k.sys_umask(
        pid, Mode(static_cast<std::uint16_t>(as_int(args, 0)))));
  if (name == "read") {
    std::string sink;
    return result_of(k.sys_read(pid, static_cast<int>(as_int(args, 0)), &sink,
                                static_cast<std::size_t>(as_int(args, 1))));
  }
  if (name == "write") {
    // write(fd, "data") or write(fd, nbytes) for bulk writes.
    if (args.size() > 1 && std::holds_alternative<std::int64_t>(args[1])) {
      std::string data(static_cast<std::size_t>(as_int(args, 1)), 'x');
      return result_of(k.sys_write(pid, static_cast<int>(as_int(args, 0)), data));
    }
    return result_of(
        k.sys_write(pid, static_cast<int>(as_int(args, 0)), as_str(args, 1)));
  }
  if (name == "chmod")
    return result_of(k.sys_chmod(pid, as_str(args, 0),
                                 Mode(static_cast<std::uint16_t>(as_int(args, 1)))));
  if (name == "fchmod")
    return result_of(k.sys_fchmod(pid, static_cast<int>(as_int(args, 0)),
                                  Mode(static_cast<std::uint16_t>(as_int(args, 1)))));
  if (name == "chown")
    return result_of(k.sys_chown(pid, as_str(args, 0),
                                 static_cast<int>(as_int(args, 1)),
                                 static_cast<int>(as_int(args, 2))));
  if (name == "fchown")
    return result_of(k.sys_fchown(pid, static_cast<int>(as_int(args, 0)),
                                  static_cast<int>(as_int(args, 1)),
                                  static_cast<int>(as_int(args, 2))));
  if (name == "unlink") return result_of(k.sys_unlink(pid, as_str(args, 0)));
  if (name == "link")
    return result_of(k.sys_link(pid, as_str(args, 0), as_str(args, 1)));
  if (name == "creat")
    return result_of(k.sys_creat(pid, as_str(args, 0),
                                 Mode(static_cast<std::uint16_t>(
                                     args.size() > 1 ? as_int(args, 1) : 0644))));
  if (name == "rename")
    return result_of(k.sys_rename(pid, as_str(args, 0), as_str(args, 1)));
  if (name == "stat") {
    os::FileMeta meta;
    return result_of(k.sys_stat(pid, as_str(args, 0), &meta));
  }
  if (name == "stat_owner") {
    os::FileMeta meta;
    os::SysResult r = k.sys_stat(pid, as_str(args, 0), &meta);
    return r.ok() ? meta.owner : result_of(r);
  }
  if (name == "stat_group") {
    os::FileMeta meta;
    os::SysResult r = k.sys_stat(pid, as_str(args, 0), &meta);
    return r.ok() ? meta.group : result_of(r);
  }
  if (name == "chroot") return result_of(k.sys_chroot(pid, as_str(args, 0)));

  if (name == "setuid") return result_of(k.sys_setuid(pid, static_cast<int>(as_int(args, 0))));
  if (name == "seteuid") return result_of(k.sys_seteuid(pid, static_cast<int>(as_int(args, 0))));
  if (name == "setresuid")
    return result_of(k.sys_setresuid(pid, static_cast<int>(as_int(args, 0)),
                                     static_cast<int>(as_int(args, 1)),
                                     static_cast<int>(as_int(args, 2))));
  if (name == "setgid") return result_of(k.sys_setgid(pid, static_cast<int>(as_int(args, 0))));
  if (name == "setegid") return result_of(k.sys_setegid(pid, static_cast<int>(as_int(args, 0))));
  if (name == "setresgid")
    return result_of(k.sys_setresgid(pid, static_cast<int>(as_int(args, 0)),
                                     static_cast<int>(as_int(args, 1)),
                                     static_cast<int>(as_int(args, 2))));
  if (name == "setgroups") {
    std::vector<caps::Gid> groups;
    for (std::size_t i = 0; i < args.size(); ++i)
      groups.push_back(static_cast<caps::Gid>(as_int(args, i)));
    return result_of(k.sys_setgroups(pid, std::move(groups)));
  }
  if (name == "getuid") return result_of(k.sys_getuid(pid));
  if (name == "geteuid") return result_of(k.sys_geteuid(pid));
  if (name == "getgid") return result_of(k.sys_getgid(pid));
  if (name == "getpid") return pid;

  if (name == "signal") {
    PA_CHECK(args.size() == 2, "signal(signo, @handler)");
    const auto* f = std::get_if<ir::FuncRef>(&args[1]);
    PA_CHECK(f != nullptr, "signal: handler must be a function reference");
    return result_of(
        k.sys_signal(pid, static_cast<int>(as_int(args, 0)), f->name));
  }
  if (name == "kill")
    return result_of(k.sys_kill(pid, static_cast<int>(as_int(args, 0)),
                                static_cast<int>(as_int(args, 1))));

  if (name == "socket") {
    auto type = as_int(args, 0) == SyscallEncoding::kSockRaw
                    ? os::SockType::Raw
                    : os::SockType::Stream;
    return result_of(k.sys_socket(pid, type));
  }
  if (name == "bind")
    return result_of(k.sys_bind(pid, static_cast<int>(as_int(args, 0)),
                                static_cast<int>(as_int(args, 1))));
  if (name == "connect")
    return result_of(k.sys_connect(pid, static_cast<int>(as_int(args, 0)),
                                   static_cast<int>(as_int(args, 1))));
  if (name == "setsockopt")
    return result_of(k.sys_setsockopt(pid, static_cast<int>(as_int(args, 0)),
                                      as_str(args, 1),
                                      static_cast<int>(as_int(args, 2))));

  if (name == "prctl") {
    if (as_int(args, 0) == SyscallEncoding::kPrctlStrictSecurebits)
      return result_of(k.sys_prctl(pid, os::PrctlOp::SetSecurebitsStrict));
    return -static_cast<std::int64_t>(os::Errno::Einval);
  }

  return -static_cast<std::int64_t>(os::Errno::Enosys);
}

std::vector<std::string> known_syscalls() {
  return {"open",      "close",     "dup",       "access",    "umask",
          "read",      "write",     "chmod",
          "fchmod",    "chown",     "fchown",    "unlink",    "rename",
          "link",      "creat",
          "stat",      "stat_owner", "stat_group", "chroot",
          "setuid",    "seteuid",   "setresuid", "setgid",    "setegid",
          "setresgid", "setgroups", "getuid",    "geteuid",   "getgid",
          "getpid",    "signal",    "kill",      "socket",    "bind",
          "connect",   "setsockopt", "prctl"};
}

}  // namespace pa::vm
