#include "privc/lexer.h"

#include <cctype>
#include <map>

#include "caps/capability.h"
#include "support/error.h"
#include "support/str.h"

namespace pa::privc {
namespace {

const std::map<std::string, Tok, std::less<>>& keywords() {
  static const std::map<std::string, Tok, std::less<>> kw = {
      {"fn", Tok::KwFn},           {"var", Tok::KwVar},
      {"if", Tok::KwIf},           {"else", Tok::KwElse},
      {"while", Tok::KwWhile},     {"return", Tok::KwReturn},
      {"exit", Tok::KwExit},       {"with_priv", Tok::KwWithPriv},
      {"priv_raise", Tok::KwPrivRaise},
      {"priv_lower", Tok::KwPrivLower},
      {"priv_remove", Tok::KwPrivRemove},
      {"funcref", Tok::KwFuncref},
  };
  return kw;
}

}  // namespace

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::String: return "string";
    case Tok::CapName: return "capability";
    case Tok::KwFn: return "'fn'";
    case Tok::KwVar: return "'var'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwExit: return "'exit'";
    case Tok::KwWithPriv: return "'with_priv'";
    case Tok::KwPrivRaise: return "'priv_raise'";
    case Tok::KwPrivLower: return "'priv_lower'";
    case Tok::KwPrivRemove: return "'priv_remove'";
    case Tok::KwFuncref: return "'funcref'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
    case Tok::Eof: return "end of input";
  }
  return "?";
}

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;

  auto push = [&](Tok kind, std::string text = {}, std::int64_t num = 0) {
    out.push_back(Token{kind, std::move(text), num, line});
  };
  auto err = [&](const std::string& m) {
    fail(str::cat("PrivC lex error at line ", line, ": ", m));
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      // Octal with a leading 0 (mode literals), else decimal.
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i])))
        ++i;
      std::string digits(src.substr(start, i - start));
      const int base = digits.size() > 1 && digits[0] == '0' ? 8 : 10;
      push(Tok::Number, digits, std::stoll(digits, nullptr, base));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '_'))
        ++i;
      std::string word(src.substr(start, i - start));
      auto kw = keywords().find(word);
      if (kw != keywords().end()) {
        push(kw->second, word);
      } else if (caps::parse_capability(word).has_value()) {
        push(Tok::CapName, word);
      } else {
        push(Tok::Ident, word);
      }
      continue;
    }
    if (c == '"') {
      ++i;
      std::string body;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\n') err("unterminated string");
        if (src[i] == '\\' && i + 1 < src.size()) {
          ++i;
          switch (src[i]) {
            case 'n': body += '\n'; break;
            case 't': body += '\t'; break;
            case '"': body += '"'; break;
            case '\\': body += '\\'; break;
            default: err("bad escape");
          }
          ++i;
          continue;
        }
        body += src[i++];
      }
      if (i >= src.size()) err("unterminated string");
      ++i;
      push(Tok::String, std::move(body));
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two('=', '=')) { push(Tok::EqEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::NotEq); i += 2; continue; }
    if (two('<', '=')) { push(Tok::Le); i += 2; continue; }
    if (two('>', '=')) { push(Tok::Ge); i += 2; continue; }
    if (two('&', '&')) { push(Tok::AndAnd); i += 2; continue; }
    if (two('|', '|')) { push(Tok::OrOr); i += 2; continue; }
    switch (c) {
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case ',': push(Tok::Comma); break;
      case ';': push(Tok::Semi); break;
      case '=': push(Tok::Assign); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      case '<': push(Tok::Lt); break;
      case '>': push(Tok::Gt); break;
      case '!': push(Tok::Not); break;
      default:
        err(str::cat("unexpected character '", std::string(1, c), "'"));
    }
    ++i;
  }
  push(Tok::Eof);
  return out;
}

}  // namespace pa::privc
