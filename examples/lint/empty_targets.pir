; PrivLint fixture: seeded empty-indirect-targets defect (and nothing else).
; The pointer in %0 only ever holds @handler, which takes 2 parameters, but
; the callind passes 0 arguments — after arity filtering the refined target
; set is empty, so executing the call would abort the VM.
;
; !name: empty_targets
; !description: lint fixture - indirect call with no feasible target
; !uid: 1000
; !gid: 1000

func @handler(2) {
entry:
  %2 = add %0, %1
  ret %2
}

func @main(0) {
entry:
  %0 = funcaddr @handler
  %1 = callind %0()
  exit 0
}
