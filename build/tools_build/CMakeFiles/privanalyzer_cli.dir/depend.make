# Empty dependencies file for privanalyzer_cli.
# This may be replaced when dependencies are built.
