// Regenerates the paper's Figures 10-11: ROSA search time for the
// refactored passwd and su.
//
// Expected shape versus the paper: slower than the stock programs' searches
// — the refactoring introduces extra uid/gid values (the `etc` user, the
// shadow group, the planted target ids), so the wildcard instantiation
// space is larger; impossible attacks pay the full cost, and with the
// Table V budget some hit the resource limit ([T], the paper's timeout).
#include "bench_util.h"

using namespace pa;

int main() {
  privanalyzer::PipelineOptions opts;
  opts.run_rosa = false;

  rosa::SearchLimits limits;
  limits.max_states = 1'000'000;

  {
    programs::ProgramSpec spec = programs::make_passwd_refactored();
    privanalyzer::ProgramAnalysis a =
        privanalyzer::analyze_program(spec, opts);
    bench::print_search_time_figure(
        "Figure 10: search time for refactored passwd", a, spec, limits);
  }
  {
    programs::ProgramSpec spec = programs::make_su_refactored();
    privanalyzer::ProgramAnalysis a =
        privanalyzer::analyze_program(spec, opts);
    bench::print_search_time_figure(
        "Figure 11: search time for refactored su", a, spec, limits);
  }
  return 0;
}
