#include "rosa/canon.h"

#include <algorithm>
#include <cassert>

#include "rosa/checker.h"
#include "rosa/rules.h"

namespace pa::rosa {
namespace {

// Collects every uid (resp. gid) value that occurs concretely in the
// initial configuration or as a concrete message argument. Pool ids outside
// this set are free: no rule, checker decision, or goal can ever
// distinguish them from each other.
struct UsedIds {
  std::vector<int> users;
  std::vector<int> groups;

  void user(int id) {
    if (id != kWild) users.push_back(id);
  }
  void group(int id) {
    if (id != kWild) groups.push_back(id);
  }
};

void collect_state_ids(const State& st, UsedIds& used) {
  for (const ProcObj& p : st.procs) {
    used.user(p.uid.real);
    used.user(p.uid.effective);
    used.user(p.uid.saved);
    used.group(p.gid.real);
    used.group(p.gid.effective);
    used.group(p.gid.saved);
    for (int g : p.supplementary) used.group(g);
  }
  for (const FileObj& f : st.files) {
    used.user(f.meta.owner);
    used.group(f.meta.group);
  }
  for (const DirObj& d : st.dirs) {
    used.user(d.meta.owner);
    used.group(d.meta.group);
  }
}

void collect_message_ids(const Message& m, UsedIds& used) {
  switch (m.sys) {
    case Sys::Setuid:
    case Sys::Seteuid:
      used.user(m.args[0]);
      break;
    case Sys::Setresuid:
      used.user(m.args[0]);
      used.user(m.args[1]);
      used.user(m.args[2]);
      break;
    case Sys::Setgid:
    case Sys::Setegid:
      used.group(m.args[0]);
      break;
    case Sys::Setresgid:
      used.group(m.args[0]);
      used.group(m.args[1]);
      used.group(m.args[2]);
      break;
    case Sys::Chown:
    case Sys::Fchown:
      used.user(m.args[1]);
      used.group(m.args[2]);
      break;
    default:
      // Every other argument is an object id, mode, port, or signal —
      // never an identity.
      break;
  }
}

std::vector<int> free_ids(const std::vector<int>& pool,
                          std::vector<int>& used) {
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  std::vector<int> out;
  for (int id : pool)
    if (!std::binary_search(used.begin(), used.end(), id)) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

bool is_free(const std::vector<int>& pool, int id) {
  return std::binary_search(pool.begin(), pool.end(), id);
}

// First-occurrence mapper for one identity pool: the i-th distinct free id
// visited maps to the i-th smallest free id. note() must be called in the
// fixed scan order; lookups afterwards.
class Mapper {
 public:
  explicit Mapper(const std::vector<int>& free) : free_(free) {}

  void note(int id) {
    if (!is_free(free_, id)) return;
    for (const auto& [from, to] : map_)
      if (from == id) return;
    map_.emplace_back(id, free_[map_.size()]);
  }

  /// The mapping as a *permutation* of the whole free pool, sparse
  /// non-identity pairs only. The occurring ids map per first occurrence;
  /// the rest of the pool maps order-preservingly onto the vacated ids. A
  /// genuine permutation (rather than the bare injection on occurring ids)
  /// is what makes renamings composable and invertible during witness
  /// reconstruction: a wildcard instantiation can introduce an id the
  /// composed renaming has already routed elsewhere, and only a bijection
  /// gives it a well-defined preimage.
  std::vector<std::pair<int, int>> permutation() const {
    std::vector<std::pair<int, int>> out;
    for (const auto& [from, to] : map_)
      if (from != to) out.emplace_back(from, to);
    if (out.empty()) return out;  // occurring ids already canonical
    std::vector<int> sources;  // free \ occurring, ascending
    std::vector<int> targets;  // free \ {first |occurring| ids}, ascending
    for (int id : free_) {
      bool occurs = false;
      for (const auto& [from, to] : map_) occurs |= (from == id);
      if (!occurs) sources.push_back(id);
    }
    for (std::size_t i = map_.size(); i < free_.size(); ++i)
      targets.push_back(free_[i]);
    for (std::size_t i = 0; i < sources.size(); ++i)
      if (sources[i] != targets[i]) out.emplace_back(sources[i], targets[i]);
    return out;
  }

 private:
  const std::vector<int>& free_;
  std::vector<std::pair<int, int>> map_;  // first-occurrence order
};

int rename_one(const std::vector<std::pair<int, int>>& map, int id) {
  for (const auto& [from, to] : map)
    if (from == id) return to;
  return id;
}

int unrename_one(const std::vector<std::pair<int, int>>& map, int id) {
  for (const auto& [from, to] : map)
    if (to == id) return from;
  return id;
}

}  // namespace

SymmetryInfo compute_symmetry(const Query& query) {
  if (!query.goal.info().identity_invariant) return {};
  const AccessChecker& ck = query.checker ? *query.checker : linux_checker();
  if (!ck.identity_symmetric()) return {};
  // FixedArgs pins every argument, so free ids can never enter a state;
  // canonicalization would be a guaranteed identity pass. Skip the scans.
  if (query.attacker == AttackerModel::FixedArgs) return {};

  UsedIds used;
  collect_state_ids(query.initial, used);
  for (const Message& m : query.messages) collect_message_ids(m, used);

  SymmetryInfo sym;
  sym.free_users = free_ids(query.initial.users(), used.users);
  sym.free_groups = free_ids(query.initial.groups(), used.groups);
  if (!sym.enabled()) return {};
  return sym;
}

Renaming canonicalize(State& st, const SymmetryInfo& sym) {
  if (!sym.enabled()) return {};

  // Pass 1: compute the first-occurrence mapping over the fixed scan order.
  // Supplementary vectors are deliberately not scanned: they are immutable
  // during search, so anything in them occurs in the initial state and is
  // not free (the property that makes first-occurrence renaming exact).
  Mapper users(sym.free_users);
  Mapper groups(sym.free_groups);
  for (const ProcObj& p : st.procs) {
    users.note(p.uid.real);
    users.note(p.uid.effective);
    users.note(p.uid.saved);
    groups.note(p.gid.real);
    groups.note(p.gid.effective);
    groups.note(p.gid.saved);
  }
  for (const FileObj& f : st.files) {
    users.note(f.meta.owner);
    groups.note(f.meta.group);
  }
  for (const DirObj& d : st.dirs) {
    users.note(d.meta.owner);
    groups.note(d.meta.group);
  }

  Renaming sigma;
  sigma.users = users.permutation();
  sigma.groups = groups.permutation();
  if (sigma.identity()) return sigma;

  // Pass 2: rewrite through mutate_*() so the XOR digest stays incremental.
  const auto u = [&](int id) { return rename_one(sigma.users, id); };
  const auto g = [&](int id) { return rename_one(sigma.groups, id); };
  for (const ProcObj& p : st.procs) {
    if (u(p.uid.real) == p.uid.real && u(p.uid.effective) == p.uid.effective &&
        u(p.uid.saved) == p.uid.saved && g(p.gid.real) == p.gid.real &&
        g(p.gid.effective) == p.gid.effective && g(p.gid.saved) == p.gid.saved)
      continue;
    st.mutate_proc(p.id, [&](ProcObj& q) {
      q.uid = {u(q.uid.real), u(q.uid.effective), u(q.uid.saved)};
      q.gid = {g(q.gid.real), g(q.gid.effective), g(q.gid.saved)};
    });
  }
  for (const FileObj& f : st.files) {
    if (u(f.meta.owner) == f.meta.owner && g(f.meta.group) == f.meta.group)
      continue;
    st.mutate_file(f.id, [&](FileObj& q) {
      q.meta.owner = u(q.meta.owner);
      q.meta.group = g(q.meta.group);
    });
  }
  for (const DirObj& d : st.dirs) {
    if (u(d.meta.owner) == d.meta.owner && g(d.meta.group) == d.meta.group)
      continue;
    st.mutate_dir(d.id, [&](DirObj& q) {
      q.meta.owner = u(q.meta.owner);
      q.meta.group = g(q.meta.group);
    });
  }
  return sigma;
}

void compose_renaming(Renaming& rho, const Renaming& sigma) {
  const auto compose_one = [](std::vector<std::pair<int, int>>& r,
                              const std::vector<std::pair<int, int>>& s) {
    std::vector<std::pair<int, int>> out;
    // Ids moved by rho: follow through sigma.
    for (const auto& [from, via] : r) {
      int to = rename_one(s, via);
      if (from != to) out.emplace_back(from, to);
    }
    // Ids fixed by rho but moved by sigma. (Both maps are permutations, so
    // sparse non-identity support is closed: an id in rho's image but not
    // its domain cannot exist.)
    for (const auto& [from, to] : s) {
      bool in_rho_domain = false;
      for (const auto& [rf, rt] : r) in_rho_domain |= (rf == from);
      if (!in_rho_domain && from != to) out.emplace_back(from, to);
    }
    r = std::move(out);
  };
  compose_one(rho.users, sigma.users);
  compose_one(rho.groups, sigma.groups);
}

void unrename_action(Action& a, const Renaming& rho) {
  if (rho.identity()) return;
  switch (a.sys) {
    case Sys::Setuid:
    case Sys::Seteuid:
      a.args[0] = unrename_one(rho.users, a.args[0]);
      break;
    case Sys::Setresuid:
      for (int i = 0; i < 3; ++i)
        a.args[i] = unrename_one(rho.users, a.args[i]);
      break;
    case Sys::Setgid:
    case Sys::Setegid:
      a.args[0] = unrename_one(rho.groups, a.args[0]);
      break;
    case Sys::Setresgid:
      for (int i = 0; i < 3; ++i)
        a.args[i] = unrename_one(rho.groups, a.args[i]);
      break;
    case Sys::Chown:
    case Sys::Fchown:
      a.args[1] = unrename_one(rho.users, a.args[1]);
      a.args[2] = unrename_one(rho.groups, a.args[2]);
      break;
    default:
      break;
  }
}

}  // namespace pa::rosa
