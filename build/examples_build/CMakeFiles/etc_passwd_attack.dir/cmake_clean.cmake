file(REMOVE_RECURSE
  "../examples/etc_passwd_attack"
  "../examples/etc_passwd_attack.pdb"
  "CMakeFiles/etc_passwd_attack.dir/etc_passwd_attack.cpp.o"
  "CMakeFiles/etc_passwd_attack.dir/etc_passwd_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etc_passwd_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
