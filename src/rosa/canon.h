// Symmetry reduction for ROSA: canonicalize states modulo permutations of
// the *free* wildcard identities.
//
// The WorldSkeleton's user/group pools deliberately over-provision ids for
// wildcard set*id/chown arguments to range over (the paper's §V-B state
// bound). Any pool id that occurs neither in the initial configuration nor
// as a concrete message argument is "free": the access-control models
// shipped here decide purely by id equality and set membership
// (AccessChecker::identity_symmetric()), so permuting free uids among
// themselves — and, independently, free gids — maps reachable states to
// reachable states and preserves every identity-invariant goal. Exploring
// one representative per orbit is therefore sound, and on pool-heavy
// workloads collapses the space by nearly the orbit size (k free ids that a
// wildcard can land on become 1 choice instead of k).
//
// canonicalize() picks the representative by first-occurrence renaming over
// a fixed scan order of identity-valued *scalar* fields (uid/gid triples in
// process order, then file/dir owner/group in object order): the i-th
// distinct free id encountered is renamed to the i-th smallest free id.
// Scan positions never depend on the id values themselves, so two states in
// the same orbit visit the same positions and map to the identical
// representative — this is the classic scalarset canonicalization, and here
// it is *exact*, not heuristic, because free ids can only ever occur in
// those scalar fields: supplementary group vectors are immutable during
// search and anything in them (or anywhere else in the initial state) is by
// definition not free. One O(objects) pass, no permutation enumeration, and
// the rewrite goes through State::mutate_*() so the incremental XOR digest
// stays O(changed objects).
#pragma once

#include <utility>
#include <vector>

#include "rosa/search.h"
#include "rosa/state.h"

namespace pa::rosa {

/// The free identity pools of one query, computed once per search.
/// Default-constructed = symmetry reduction disabled.
struct SymmetryInfo {
  std::vector<int> free_users;   // sorted ascending
  std::vector<int> free_groups;  // sorted ascending

  /// A single free id only permutes with itself, so at least two are
  /// needed (per pool) before any state can be non-canonical.
  bool enabled() const {
    return free_users.size() > 1 || free_groups.size() > 1;
  }
};

/// Compute the free pools for `query`, or a disabled SymmetryInfo when the
/// reduction does not apply: the goal is not identity-invariant, the
/// checker is not identity-symmetric, or the attacker model fixes every
/// argument (free ids can then never enter a state at all).
SymmetryInfo compute_symmetry(const Query& query);

/// The identity permutation a canonicalization applied, as sparse
/// old-id -> new-id pairs (identity mappings omitted). Witness
/// reconstruction composes these along the goal path and applies the
/// inverse to id-typed action arguments, so reported witnesses replay from
/// the *original* initial state (rosa/replay.h) even though the search
/// walked renamed representatives.
struct Renaming {
  std::vector<std::pair<int, int>> users;
  std::vector<std::pair<int, int>> groups;

  bool identity() const { return users.empty() && groups.empty(); }
};

/// Rewrite `st` to its orbit representative in place (incremental-digest
/// safe); returns the renaming that was applied. Identity when the state
/// was already canonical — the common case, and the fast path: the mapping
/// is computed first and the state is only touched when it is non-trivial.
Renaming canonicalize(State& st, const SymmetryInfo& sym);

/// rho := sigma ∘ rho over the free pools (ids missing from a map are
/// implicitly fixed). Used to accumulate per-node renamings along a
/// witness path.
void compose_renaming(Renaming& rho, const Renaming& sigma);

/// Apply rho^{-1} to the id-typed arguments of `a` (set*id targets and
/// chown/fchown owner/group); all other argument kinds are object ids or
/// modes and are never renamed.
void unrename_action(Action& a, const Renaming& rho);

}  // namespace pa::rosa
