file(REMOVE_RECURSE
  "../examples/container_policy"
  "../examples/container_policy.pdb"
  "CMakeFiles/container_policy.dir/container_policy.cpp.o"
  "CMakeFiles/container_policy.dir/container_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
