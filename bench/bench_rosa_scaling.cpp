// Ablation benchmarks for ROSA's design choices (§VIII's claim that search
// time is driven by state-space size), built on google-benchmark.
//
// The rich-but-impossible workhorse is WriteDevMem under CAP_SETGID: the
// attacker can permute gids through every group object (large reachable
// space) but /dev/mem's group has no write bit, so the goal is unreachable
// and the search must exhaust everything. The possible counterpart is
// ReadDevMem under CAP_SETUID, which stops at the first witness.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "attacks/scenario.h"
#include "bench_util.h"
#include "privanalyzer/efficacy.h"
#include "programs/world.h"
#include "rosa/query.h"

using namespace pa;
using caps::Capability;

namespace {

/// The cold Table-III query matrix (5 programs x epochs x 4 attacks = 96
/// queries), the workload the fused multi-goal engine was built for: the
/// four attacks of an epoch share one masked-union world, so run_queries
/// fans them into a single exploration each.
std::vector<rosa::Query> table3_matrix() {
  privanalyzer::PipelineOptions chrono_only;
  chrono_only.run_rosa = false;
  const auto analyses = privanalyzer::analyze_baseline(chrono_only);
  const auto specs = programs::all_baseline_programs();
  std::vector<rosa::Query> queries;
  for (std::size_t p = 0; p < specs.size(); ++p) {
    const auto syscalls = specs[p].syscalls_used();
    for (const chronopriv::EpochRow& row : analyses[p].chrono.rows) {
      attacks::ScenarioInput in = attacks::scenario_from_epoch(
          row, syscalls, specs[p].scenario_extra_users,
          specs[p].scenario_extra_groups);
      for (const attacks::AttackInfo& a : attacks::modeled_attacks())
        queries.push_back(attacks::build_attack_query(a.id, in));
    }
  }
  return queries;
}

/// The fixed matrix search config (mirrors the differential suites).
rosa::SearchLimits matrix_limits() {
  rosa::SearchLimits limits;
  limits.max_states = 1'000'000;
  limits.check_hashes = true;
  return limits;
}

rosa::Query make_query(attacks::AttackId attack, caps::CapSet permitted,
                       int extra_ids, int n_syscalls = 7) {
  attacks::ScenarioInput in;
  in.permitted = permitted;
  in.creds = caps::Credentials::of_user(1000, 1000);
  std::vector<std::string> all = {"setresgid", "open",   "chmod", "chown",
                                  "setgid",    "setuid", "unlink"};
  all.resize(static_cast<std::size_t>(n_syscalls));
  in.syscalls = all;
  for (int i = 0; i < extra_ids; ++i) {
    in.extra_users.push_back(2000 + i);
    in.extra_groups.push_back(3000 + i);
  }
  return attacks::build_attack_query(attack, in);
}

rosa::Query impossible_query(int extra_ids, int n_syscalls = 7) {
  return make_query(attacks::AttackId::WriteDevMem,
                    {Capability::Setgid}, extra_ids, n_syscalls);
}

void report(benchmark::State& state, const rosa::SearchResult& r) {
  state.counters["states"] = static_cast<double>(r.states_explored());
  state.counters["transitions"] = static_cast<double>(r.transitions());
  state.counters["bytes_per_state"] = r.stats.bytes_per_state();
}

}  // namespace

// Search cost vs. the size of the wildcard id pools — the mechanism that
// makes the refactored programs' searches slower (Figs. 10-11).
static void BM_PoolScaling(benchmark::State& state) {
  rosa::Query q = impossible_query(static_cast<int>(state.range(0)));
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q);
    benchmark::DoNotOptimize(last.stats.states);
  }
  report(state, last);
}
BENCHMARK(BM_PoolScaling)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Search cost vs. the number of one-shot messages (bounded-model depth).
static void BM_MessageCountScaling(benchmark::State& state) {
  rosa::Query q = impossible_query(2, static_cast<int>(state.range(0)));
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q);
    benchmark::DoNotOptimize(last.stats.states);
  }
  report(state, last);
}
BENCHMARK(BM_MessageCountScaling)->Arg(1)->Arg(3)->Arg(5)->Arg(7);

// The paper's §VIII observation: reachable goals verify fast (first-witness
// exit), impossible ones pay for the whole space.
static void BM_PossibleAttack(benchmark::State& state) {
  rosa::Query q = make_query(attacks::AttackId::ReadDevMem,
                             {Capability::Setuid}, 2);
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q);
    benchmark::DoNotOptimize(last.verdict);
  }
  report(state, last);
  if (last.verdict != rosa::Verdict::Reachable)
    state.SkipWithError("expected reachable");
}
BENCHMARK(BM_PossibleAttack);

static void BM_ImpossibleAttack(benchmark::State& state) {
  rosa::Query q = impossible_query(2);
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q);
    benchmark::DoNotOptimize(last.verdict);
  }
  report(state, last);
  if (last.verdict != rosa::Verdict::Unreachable)
    state.SkipWithError("expected unreachable");
}
BENCHMARK(BM_ImpossibleAttack);

// DESIGN.md decision 2: canonical-state deduplication. Off, commuting
// message orders multiply instead of collapsing.
static void BM_DedupOn(benchmark::State& state) {
  rosa::Query q = impossible_query(1);
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q);
    benchmark::DoNotOptimize(last.stats.states);
  }
  report(state, last);
}
BENCHMARK(BM_DedupOn);

// DESIGN.md decision 13: symmetry + partial-order reduction. On (the
// default), the pool's free gids collapse to one orbit representative and
// the impossible space stops growing with the pool size; off, every
// wildcard landing multiplies the space.
static void BM_ReductionOn(benchmark::State& state) {
  rosa::Query q = impossible_query(static_cast<int>(state.range(0)));
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q);
    benchmark::DoNotOptimize(last.stats.states);
  }
  report(state, last);
  state.counters["symmetry_pruned"] =
      static_cast<double>(last.stats.symmetry_pruned);
}
BENCHMARK(BM_ReductionOn)->Arg(4)->Arg(6)->Arg(8);

static void BM_ReductionOff(benchmark::State& state) {
  rosa::Query q = impossible_query(static_cast<int>(state.range(0)));
  rosa::SearchLimits limits;
  limits.reduction = false;
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q, limits);
    benchmark::DoNotOptimize(last.stats.states);
  }
  report(state, last);
}
BENCHMARK(BM_ReductionOff)->Arg(4)->Arg(6)->Arg(8);

static void BM_DedupOff(benchmark::State& state) {
  rosa::Query q = impossible_query(1);
  rosa::SearchLimits limits;
  limits.no_dedup = true;
  limits.max_states = 5'000'000;  // safety net: the space explodes
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q, limits);
    benchmark::DoNotOptimize(last.stats.states);
  }
  report(state, last);
}
BENCHMARK(BM_DedupOff);

// Fused vs unfused cold matrix: Arg(1) groups each epoch's four attacks
// into one multi-goal exploration; Arg(0) is the --no-fused-search
// ablation running all 96 queries standalone. Results are bit-identical
// (rosa_fused_diff_test); the counters show what the fusion shares.
static void BM_FusedMatrix(benchmark::State& state) {
  const std::vector<rosa::Query> queries = table3_matrix();
  rosa::SearchLimits limits = matrix_limits();
  limits.fused = state.range(0) != 0;
  std::vector<rosa::SearchResult> last;
  for (auto _ : state) {
    last = rosa::run_queries(queries, limits, 1, {}, nullptr);
    benchmark::DoNotOptimize(last.data());
  }
  std::size_t member_states = 0, world_states = 0, saved = 0;
  for (const rosa::SearchResult& r : last) {
    member_states += r.stats.states;
    world_states += r.stats.fused_world_states;
    saved += r.stats.fused_searches_saved;
  }
  state.counters["member_states"] = static_cast<double>(member_states);
  state.counters["world_states"] = static_cast<double>(world_states);
  state.counters["searches_saved"] = static_cast<double>(saved);
  state.counters["explorations"] =
      static_cast<double>(queries.size() - saved);
}
BENCHMARK(BM_FusedMatrix)->Arg(0)->Arg(1);

// Intra-search scaling: one search, N workers expanding each BFS layer
// (rosa/frontier.h). Arg(1) is the serial loop; higher args measure what
// the layer-barrier determinism costs or buys at identical results.
static void BM_IntraSearchWorkers(benchmark::State& state) {
  rosa::Query q = impossible_query(8);
  rosa::SearchLimits limits;
  // Reduction off: worker scaling needs the large space, which symmetry
  // reduction collapses to a pool-size-independent handful of states.
  limits.reduction = false;
  limits.search_threads = static_cast<unsigned>(state.range(0));
  rosa::SearchResult last;
  for (auto _ : state) {
    last = rosa::search(q, limits);
    benchmark::DoNotOptimize(last.stats.states);
  }
  report(state, last);
}
BENCHMARK(BM_IntraSearchWorkers)->Arg(1)->Arg(2)->Arg(4);

namespace {

/// The headline throughput/compactness measurement behind BENCH_rosa.json:
/// best-of-3 wall time for the impossible-attack space at two pool sizes,
/// reported as states/sec and arena bytes/state. These two workloads are
/// the fixed reference configs that perf changes are judged against.
void write_perf_json(const std::string& path) {
  std::vector<std::pair<std::string, double>> metrics;
  for (int extra : {6, 8}) {
    const rosa::Query q = impossible_query(extra);
    rosa::SearchResult last;
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      last = rosa::search(q);
      best = std::min(
          best, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
    }
    const std::string prefix = "pool_extra" + std::to_string(extra) + "_";
    metrics.emplace_back(prefix + "states",
                         static_cast<double>(last.stats.states));
    metrics.emplace_back(prefix + "seconds", best);
    metrics.emplace_back(prefix + "states_per_sec",
                         static_cast<double>(last.stats.states) / best);
    metrics.emplace_back(prefix + "bytes_per_state",
                         last.stats.bytes_per_state());
    // Representation-only footprint (sizeof(State) + per-state heap),
    // excluding search bookkeeping — directly comparable to the seed
    // build's ~760 B/state std::set-based representation.
    metrics.emplace_back(
        prefix + "state_bytes_per_state",
        last.stats.states ? static_cast<double>(last.stats.state_bytes) /
                                static_cast<double>(last.stats.states)
                          : 0.0);
    // The --no-reduction ablation: same space without symmetry/POR. The
    // ratio is the headline win of DESIGN.md decision 13 and is asserted
    // (>= 5x) by the CI perf smoke.
    rosa::SearchLimits unreduced;
    unreduced.reduction = false;
    rosa::SearchResult raw;
    double raw_best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      raw = rosa::search(q, unreduced);
      raw_best = std::min(
          raw_best, std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
    }
    metrics.emplace_back(prefix + "unreduced_states",
                         static_cast<double>(raw.stats.states));
    metrics.emplace_back(prefix + "unreduced_states_per_sec",
                         static_cast<double>(raw.stats.states) / raw_best);
    metrics.emplace_back(
        prefix + "reduction_state_ratio",
        last.stats.states ? static_cast<double>(raw.stats.states) /
                                static_cast<double>(last.stats.states)
                          : 0.0);
  }
  // Per-worker intra-search scaling curve on the larger reference space:
  // the layered engine is bit-identical at every worker count, so states is
  // constant and the curve isolates pure wall-clock scaling (plus the
  // w1-vs-serial overhead of the layer-barrier structure itself).
  // Measured with reduction off: the curve isolates layered-engine scaling
  // on a large fixed space, which symmetry reduction would collapse to a
  // pool-size-independent handful of states.
  {
    const rosa::Query q = impossible_query(8);
    double serial_best = 0.0;
    for (unsigned workers : {1u, 2u, 4u}) {
      rosa::SearchLimits limits;
      limits.reduction = false;
      limits.search_threads = workers;
      rosa::SearchResult last;
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        last = rosa::search(q, limits);
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
      }
      if (workers == 1) serial_best = best;
      const std::string prefix = "intra_w" + std::to_string(workers) + "_";
      metrics.emplace_back(prefix + "seconds", best);
      metrics.emplace_back(prefix + "states_per_sec",
                           static_cast<double>(last.stats.states) / best);
      metrics.emplace_back(prefix + "speedup_vs_w1", serial_best / best);
    }
  }
  // Fused multi-goal search on the cold Table-III matrix. Per-query
  // results are pinned bit-identical to standalone runs, so the states
  // metric is structural: the shared exploration costs exactly the union
  // of the members' decisive prefixes. Explorations measure searches
  // actually launched (96 queries -> ~24 fused groups).
  {
    const std::vector<rosa::Query> queries = table3_matrix();
    const rosa::SearchLimits fused_limits = matrix_limits();
    rosa::SearchLimits unfused_limits = fused_limits;
    unfused_limits.fused = false;
    std::vector<rosa::SearchResult> fused, unfused;
    double fused_best = 1e100, unfused_best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      fused = rosa::run_queries(queries, fused_limits, 1, {}, nullptr);
      fused_best = std::min(
          fused_best, std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
      t0 = std::chrono::steady_clock::now();
      unfused = rosa::run_queries(queries, unfused_limits, 1, {}, nullptr);
      unfused_best = std::min(
          unfused_best, std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    }
    std::size_t member_states = 0, world_states = 0, saved = 0;
    for (const rosa::SearchResult& r : fused) {
      member_states += r.stats.states;
      world_states += r.stats.fused_world_states;
      saved += r.stats.fused_searches_saved;
    }
    const double n = static_cast<double>(queries.size());
    metrics.emplace_back("fused_matrix_queries", n);
    metrics.emplace_back("fused_searches_saved",
                         static_cast<double>(saved));
    metrics.emplace_back("fused_matrix_explorations",
                         n - static_cast<double>(saved));
    metrics.emplace_back("fused_exploration_reduction",
                         n / (n - static_cast<double>(saved)));
    metrics.emplace_back("fused_member_states",
                         static_cast<double>(member_states));
    metrics.emplace_back("fused_world_states",
                         static_cast<double>(world_states));
    metrics.emplace_back(
        "fused_states_reduction",
        world_states ? static_cast<double>(member_states) /
                           static_cast<double>(world_states)
                     : 0.0);
    metrics.emplace_back("fused_matrix_seconds", fused_best);
    metrics.emplace_back("unfused_matrix_seconds", unfused_best);
  }
  if (!pa::bench::write_json_metrics(path, metrics)) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = pa::bench::take_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_perf_json(json_path);
  return 0;
}
