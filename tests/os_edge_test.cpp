// Edge-case coverage for SimOS corners not exercised elsewhere: descriptor
// exhaustion, socket lifecycle, read offsets, chroot bookkeeping, signal
// queues, and PrivState rendering.
#include <gtest/gtest.h>

#include "os/kernel.h"

namespace pa::os {
namespace {

using caps::Capability;
using caps::Credentials;

TEST(OsEdgeTest, ClosingSocketReleasesPort) {
  Kernel k;
  Pid p = k.spawn("p", Credentials::of_user(1000, 1000), {});
  SysResult s = k.sys_socket(p, SockType::Stream);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(k.sys_bind(p, static_cast<Fd>(s.value()), 8080).ok());
  EXPECT_TRUE(k.net().port_in_use(8080));
  ASSERT_TRUE(k.sys_close(p, static_cast<Fd>(s.value())).ok());
  EXPECT_FALSE(k.net().port_in_use(8080));
  // Port is reusable afterwards.
  SysResult s2 = k.sys_socket(p, SockType::Stream);
  EXPECT_TRUE(k.sys_bind(p, static_cast<Fd>(s2.value()), 8080).ok());
}

TEST(OsEdgeTest, DescriptorExhaustion) {
  Kernel k;
  k.vfs().add_file("/f", FileMeta{1000, 1000, Mode(0644)}, "x");
  Pid p = k.spawn("p", Credentials::of_user(1000, 1000), {});
  SysResult last = 0;
  for (int i = 0; i < 300; ++i) {
    last = k.sys_open(p, "/f", OpenFlags::kRead);
    if (!last.ok()) break;
  }
  EXPECT_EQ(last.error(), Errno::Emfile);
  // Sockets hit the same table limit.
  EXPECT_EQ(k.sys_socket(p, SockType::Stream).error(), Errno::Emfile);
}

TEST(OsEdgeTest, ReadAdvancesOffsetToEof) {
  Kernel k;
  k.vfs().add_file("/f", FileMeta{1000, 1000, Mode(0644)}, "abcdef");
  Pid p = k.spawn("p", Credentials::of_user(1000, 1000), {});
  Fd fd = static_cast<Fd>(k.sys_open(p, "/f", OpenFlags::kRead).value());
  std::string buf;
  EXPECT_EQ(k.sys_read(p, fd, &buf, 4).value(), 4);
  EXPECT_EQ(buf, "abcd");
  EXPECT_EQ(k.sys_read(p, fd, &buf, 4).value(), 2);
  EXPECT_EQ(buf, "ef");
  EXPECT_EQ(k.sys_read(p, fd, &buf, 4).value(), 0);  // EOF
}

TEST(OsEdgeTest, WriteThenReadThroughSeparateFds) {
  Kernel k;
  os::Ino home = k.vfs().mkdirs("/home");
  k.vfs().inode(home).meta = FileMeta{1000, 1000, Mode(0755)};
  Pid p = k.spawn("p", Credentials::of_user(1000, 1000), {});
  Fd w = static_cast<Fd>(
      k.sys_open(p, "/home/f", OpenFlags::kWrite | OpenFlags::kCreate)
          .value());
  ASSERT_TRUE(k.sys_write(p, w, "hello").ok());
  Fd r = static_cast<Fd>(k.sys_open(p, "/home/f", OpenFlags::kRead).value());
  std::string buf;
  EXPECT_EQ(k.sys_read(p, r, &buf, 10).value(), 5);
  EXPECT_EQ(buf, "hello");
}

TEST(OsEdgeTest, TruncRequiresWriteToHaveEffect) {
  Kernel k;
  k.vfs().add_file("/f", FileMeta{1000, 1000, Mode(0644)}, "data");
  Pid p = k.spawn("p", Credentials::of_user(1000, 1000), {});
  ASSERT_TRUE(
      k.sys_open(p, "/f", OpenFlags::kWrite | OpenFlags::kTrunc).ok());
  EXPECT_TRUE(k.vfs().inode(*k.vfs().lookup("/f")).data.empty());
}

TEST(OsEdgeTest, SignalQueueOrderPreserved) {
  Kernel k;
  Pid victim = k.spawn("v", Credentials::of_user(1000, 1000), {});
  ASSERT_TRUE(k.sys_signal(victim, kSigTerm, "on_term").ok());
  ASSERT_TRUE(k.sys_signal(victim, kSigHup, "on_hup").ok());
  Pid sender = k.spawn("s", Credentials::of_user(1000, 1000), {});
  ASSERT_TRUE(k.sys_kill(sender, victim, kSigHup).ok());
  ASSERT_TRUE(k.sys_kill(sender, victim, kSigTerm).ok());
  ASSERT_EQ(k.process(victim).pending_signals.size(), 2u);
  EXPECT_EQ(k.process(victim).pending_signals[0], kSigHup);
  EXPECT_EQ(k.process(victim).pending_signals[1], kSigTerm);
}

TEST(OsEdgeTest, KillZeroProbeRespectsPermissions) {
  Kernel k;
  Pid victim = k.spawn("v", Credentials::of_user(109, 109), {});
  Pid sender = k.spawn("s", Credentials::of_user(1000, 1000), {});
  EXPECT_EQ(k.sys_kill(sender, victim, 0).error(), Errno::Eperm);
}

TEST(OsEdgeTest, ChrootRecordsJail) {
  Kernel k;
  k.vfs().mkdirs("/jail/www");
  Pid p = k.spawn("p", Credentials::of_user(1000, 1000),
                  {Capability::SysChroot});
  ASSERT_TRUE(k.priv_raise(p, {Capability::SysChroot}).ok());
  ASSERT_TRUE(k.sys_chroot(p, "/jail").ok());
  EXPECT_EQ(k.process(p).root, *k.vfs().lookup("/jail"));
  // chroot to a file fails.
  k.vfs().add_file("/plain", FileMeta{0, 0, Mode(0644)});
  EXPECT_EQ(k.sys_chroot(p, "/plain").error(), Errno::Enotdir);
}

TEST(OsEdgeTest, PrivStateToStringAndIdTripleHelpers) {
  caps::PrivState ps({Capability::Setuid},
                     {Capability::Setuid, Capability::Chown});
  std::string s = ps.to_string();
  EXPECT_NE(s.find("eff={CapSetuid}"), std::string::npos);
  EXPECT_NE(s.find("CapChown"), std::string::npos);

  Credentials c = Credentials::of_user(5, 6);
  c.set_supplementary({9, 7});
  EXPECT_EQ(c.to_string(), "uid=5,5,5 gid=6,6,6 groups=7,9");
}

TEST(OsEdgeTest, SpawnedProcessesGetDistinctPids) {
  Kernel k;
  Pid a = k.spawn("a", Credentials::of_user(1, 1), {});
  Pid b = k.spawn("b", Credentials::of_user(1, 1), {});
  EXPECT_NE(a, b);
  EXPECT_EQ(k.find_process("b"), b);
  EXPECT_EQ(k.find_process("zzz"), std::nullopt);
}

}  // namespace
}  // namespace pa::os
