file(REMOVE_RECURSE
  "../examples/refactor_study"
  "../examples/refactor_study.pdb"
  "CMakeFiles/refactor_study.dir/refactor_study.cpp.o"
  "CMakeFiles/refactor_study.dir/refactor_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refactor_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
