#include "ir/transforms.h"

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "support/error.h"

namespace pa::ir {
namespace {

std::set<int> reachable_blocks(const Function& f) {
  std::set<int> seen{0};
  std::vector<int> work{0};
  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    for (int s : f.block(b).successors())
      if (seen.insert(s).second) work.push_back(s);
  }
  return seen;
}

std::optional<std::int64_t> const_int(const Operand& op) {
  if (op.kind() == Operand::Kind::Int) return op.int_value();
  return std::nullopt;
}

}  // namespace

TransformCounts remove_unreachable_blocks(Function& f) {
  TransformCounts counts;
  if (f.blocks().empty()) return counts;
  std::set<int> live = reachable_blocks(f);
  if (live.size() == f.blocks().size()) return counts;

  std::vector<BasicBlock> kept;
  kept.reserve(live.size());
  for (std::size_t b = 0; b < f.blocks().size(); ++b) {
    if (live.contains(static_cast<int>(b)))
      kept.push_back(std::move(f.blocks()[b]));
    else
      ++counts.removed_blocks;
  }
  f.blocks() = std::move(kept);
  f.resolve_labels();
  return counts;
}

TransformCounts fold_constants(Function& f) {
  TransformCounts counts;
  for (BasicBlock& bb : f.blocks()) {
    for (Instruction& inst : bb.instructions) {
      switch (inst.op) {
        case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
        case Opcode::Div: case Opcode::CmpEq: case Opcode::CmpNe:
        case Opcode::CmpLt: case Opcode::CmpLe: case Opcode::CmpGt:
        case Opcode::CmpGe: case Opcode::And: case Opcode::Or: {
          auto a = const_int(inst.operands[0]);
          auto b = const_int(inst.operands[1]);
          if (!a || !b) break;
          if (inst.op == Opcode::Div && *b == 0) break;
          std::int64_t v = 0;
          switch (inst.op) {
            case Opcode::Add: v = *a + *b; break;
            case Opcode::Sub: v = *a - *b; break;
            case Opcode::Mul: v = *a * *b; break;
            case Opcode::Div: v = *a / *b; break;
            case Opcode::CmpEq: v = *a == *b; break;
            case Opcode::CmpNe: v = *a != *b; break;
            case Opcode::CmpLt: v = *a < *b; break;
            case Opcode::CmpLe: v = *a <= *b; break;
            case Opcode::CmpGt: v = *a > *b; break;
            case Opcode::CmpGe: v = *a >= *b; break;
            case Opcode::And: v = (*a != 0) && (*b != 0); break;
            case Opcode::Or: v = (*a != 0) || (*b != 0); break;
            default: PA_UNREACHABLE("fold");
          }
          inst.op = Opcode::Mov;
          inst.operands = {Operand::imm(v)};
          ++counts.folded_instructions;
          break;
        }
        case Opcode::Not: {
          if (auto a = const_int(inst.operands[0])) {
            inst.op = Opcode::Mov;
            inst.operands = {Operand::imm(*a == 0)};
            ++counts.folded_instructions;
          }
          break;
        }
        case Opcode::CondBr: {
          if (auto c = const_int(inst.operands[0])) {
            const std::string target = inst.target_labels[*c != 0 ? 0 : 1];
            inst.op = Opcode::Br;
            inst.operands.clear();
            inst.target_labels = {target};
            ++counts.folded_instructions;
          }
          break;
        }
        default:
          break;
      }
    }
  }
  if (counts.folded_instructions) f.resolve_labels();
  return counts;
}

TransformCounts merge_straightline_blocks(Function& f) {
  TransformCounts counts;
  bool changed = true;
  while (changed) {
    changed = false;
    // Count predecessors.
    std::vector<int> pred_count(f.blocks().size(), 0);
    std::vector<int> unique_pred(f.blocks().size(), -1);
    for (std::size_t b = 0; b < f.blocks().size(); ++b) {
      for (int s : f.block(static_cast<int>(b)).successors()) {
        ++pred_count[static_cast<std::size_t>(s)];
        unique_pred[static_cast<std::size_t>(s)] = static_cast<int>(b);
      }
    }
    for (std::size_t b = 1; b < f.blocks().size(); ++b) {
      if (pred_count[b] != 1) continue;
      const int pred = unique_pred[b];
      BasicBlock& pb = f.block(pred);
      const Instruction* term = pb.terminator();
      if (!term || term->op != Opcode::Br ||
          term->targets[0] != static_cast<int>(b))
        continue;
      // Splice: drop the br, append the successor's instructions.
      BasicBlock& sb = f.block(static_cast<int>(b));
      pb.instructions.pop_back();
      for (Instruction& inst : sb.instructions)
        pb.instructions.push_back(std::move(inst));
      // The successor becomes unreachable; delete it.
      f.blocks().erase(f.blocks().begin() + static_cast<long>(b));
      f.resolve_labels();
      ++counts.merged_blocks;
      changed = true;
      break;  // indices shifted; restart the scan
    }
  }
  return counts;
}

TransformCounts simplify(Function& f) {
  TransformCounts total;
  for (;;) {
    TransformCounts round;
    auto acc = [&round](TransformCounts c) {
      round.removed_blocks += c.removed_blocks;
      round.folded_instructions += c.folded_instructions;
      round.merged_blocks += c.merged_blocks;
    };
    acc(fold_constants(f));
    acc(remove_unreachable_blocks(f));
    acc(merge_straightline_blocks(f));
    total.removed_blocks += round.removed_blocks;
    total.folded_instructions += round.folded_instructions;
    total.merged_blocks += round.merged_blocks;
    if (round.total() == 0) break;
  }
  return total;
}

TransformCounts simplify(Module& m) {
  TransformCounts total;
  for (Function& f : m.functions()) {
    TransformCounts c = simplify(f);
    total.removed_blocks += c.removed_blocks;
    total.folded_instructions += c.folded_instructions;
    total.merged_blocks += c.merged_blocks;
  }
  m.recompute_address_taken();
  return total;
}

}  // namespace pa::ir
