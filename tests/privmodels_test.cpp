// Tests for the Solaris and Capsicum privilege models (§X future work) and
// the cross-model comparison driver.
#include <gtest/gtest.h>

#include "privmodels/compare.h"

namespace pa::privmodels {
namespace {

using attacks::AttackId;
using attacks::CellVerdict;
using caps::Capability;
using caps::Credentials;

const os::FileMeta kDevMem{0, 15, os::Mode(0640)};

TEST(SolarisSetTest, NamesAndParsing) {
  for (int i = 0; i < kNumSolarisPrivs; ++i) {
    auto p = static_cast<SolarisPriv>(i);
    EXPECT_EQ(parse_solaris_priv(solaris_priv_name(p)), p);
  }
  EXPECT_EQ(parse_solaris_priv("no_such_priv"), std::nullopt);
  EXPECT_EQ(solaris_to_string(solaris_set({})), "(none)");
  EXPECT_EQ(solaris_to_string(solaris_set({SolarisPriv::FileDacRead,
                                           SolarisPriv::ProcSetid})),
            "file_dac_read,proc_setid");
}

TEST(SolarisTranslationTest, CoarseCapsSplit) {
  SolarisSet s = from_linux({Capability::DacOverride});
  EXPECT_TRUE(solaris_has(s, SolarisPriv::FileDacRead));
  EXPECT_TRUE(solaris_has(s, SolarisPriv::FileDacWrite));
  EXPECT_TRUE(solaris_has(s, SolarisPriv::FileDacSearch));

  SolarisSet r = from_linux({Capability::DacReadSearch});
  EXPECT_TRUE(solaris_has(r, SolarisPriv::FileDacRead));
  EXPECT_FALSE(solaris_has(r, SolarisPriv::FileDacWrite));

  SolarisSet u = from_linux({Capability::Setuid});
  EXPECT_TRUE(solaris_has(u, SolarisPriv::ProcSetid));
  EXPECT_TRUE(from_linux({}).empty());
}

TEST(SolarisTranslationTest, MinimizationDropsUnneededRead) {
  SolarisNeeds needs;
  needs.dac_override_needs_read = false;
  SolarisSet s = from_linux_minimized({Capability::DacOverride}, needs);
  EXPECT_FALSE(solaris_has(s, SolarisPriv::FileDacRead));
  EXPECT_TRUE(solaris_has(s, SolarisPriv::FileDacWrite));
  // With DacReadSearch also held, the read half is genuinely needed.
  SolarisSet keep = from_linux_minimized(
      {Capability::DacOverride, Capability::DacReadSearch}, needs);
  EXPECT_TRUE(solaris_has(keep, SolarisPriv::FileDacRead));
}

TEST(SolarisCheckerTest, DacReadVsWriteSeparable) {
  const SolarisChecker& ck = solaris_checker();
  Credentials user = Credentials::of_user(1000, 1000);
  SolarisSet read_only = solaris_set({SolarisPriv::FileDacRead});
  EXPECT_TRUE(ck.file_access(user, read_only, kDevMem, os::AccessKind::Read));
  EXPECT_FALSE(
      ck.file_access(user, read_only, kDevMem, os::AccessKind::Write));
  SolarisSet write_only = solaris_set({SolarisPriv::FileDacWrite});
  EXPECT_FALSE(
      ck.file_access(user, write_only, kDevMem, os::AccessKind::Read));
  EXPECT_TRUE(
      ck.file_access(user, write_only, kDevMem, os::AccessKind::Write));
}

TEST(SolarisCheckerTest, ChownSelfSemantics) {
  const SolarisChecker& ck = solaris_checker();
  Credentials user = Credentials::of_user(1000, 1000);
  os::FileMeta mine{1000, 1000, os::Mode(0644)};
  // Give-away requires FILE_CHOWN_SELF.
  EXPECT_FALSE(ck.can_chown(user, {}, mine, 2000, caps::kWildcardId));
  EXPECT_TRUE(ck.can_chown(user, solaris_set({SolarisPriv::FileChownSelf}),
                           mine, 2000, caps::kWildcardId));
  // Arbitrary chown requires FILE_CHOWN.
  EXPECT_TRUE(ck.can_chown(user, solaris_set({SolarisPriv::FileChown}),
                           kDevMem, 1000, 1000));
  EXPECT_FALSE(ck.can_chown(user, solaris_set({SolarisPriv::FileChownSelf}),
                            kDevMem, 1000, 1000));
}

TEST(SolarisCheckerTest, ProcPrivs) {
  const SolarisChecker& ck = solaris_checker();
  Credentials user = Credentials::of_user(1000, 1000);
  EXPECT_TRUE(ck.setid_privileged(user, solaris_set({SolarisPriv::ProcSetid}),
                                  true));
  EXPECT_FALSE(ck.setid_privileged(user, {}, true));
  caps::IdTriple victim{109, 109, 109};
  EXPECT_TRUE(
      ck.can_kill(user, solaris_set({SolarisPriv::ProcOwner}), victim));
  EXPECT_FALSE(ck.can_kill(user, {}, victim));
  EXPECT_TRUE(ck.can_bind(user, solaris_set({SolarisPriv::NetPrivaddr}), 22));
  EXPECT_FALSE(ck.can_bind(user, {}, 22));
  EXPECT_TRUE(ck.can_bind(user, {}, 8080));
}

TEST(CapsicumCheckerTest, GlobalNamespacesClosed) {
  const CapsicumChecker& ck = capsicum_checker();
  Credentials root = Credentials::of_user(0, 0);
  // Even "root" in capability mode can do none of this:
  EXPECT_FALSE(ck.path_lookup_allowed(root, caps::CapSet::full()));
  EXPECT_FALSE(ck.dir_search(root, caps::CapSet::full(), kDevMem));
  EXPECT_FALSE(ck.setid_privileged(root, caps::CapSet::full(), true));
  EXPECT_FALSE(ck.can_unlink(root, caps::CapSet::full(), kDevMem, kDevMem));
  EXPECT_FALSE(ck.can_raw_socket(root, caps::CapSet::full()));
}

TEST(CapsicumCheckerTest, RightsGateFdOperations) {
  const CapsicumChecker& ck = capsicum_checker();
  Credentials user = Credentials::of_user(1000, 1000);
  RightSet rw = rights({CapsicumRight::Read, CapsicumRight::Write});
  EXPECT_TRUE(ck.file_access(user, rw, kDevMem, os::AccessKind::Read));
  EXPECT_TRUE(ck.file_access(user, rw, kDevMem, os::AccessKind::Write));
  EXPECT_FALSE(ck.can_chmod(user, rw, kDevMem));
  EXPECT_TRUE(ck.can_chmod(user, rights({CapsicumRight::Fchmod}), kDevMem));
  EXPECT_FALSE(ck.can_kill(user, rw, caps::IdTriple{109, 109, 109}));
  EXPECT_TRUE(ck.can_kill(user, rights({CapsicumRight::PdKill}),
                          caps::IdTriple{109, 109, 109}));
  EXPECT_TRUE(ck.can_bind(user, rights({CapsicumRight::Bind}), 22));
}

attacks::ScenarioInput passwd_like_epoch() {
  attacks::ScenarioInput in;
  in.permitted = {Capability::Setuid, Capability::DacOverride,
                  Capability::Chown, Capability::Fowner};
  in.creds = Credentials::of_user(1000, 1000);
  in.syscalls = {"open", "chmod", "chown", "setuid", "kill",
                 "unlink", "rename"};
  return in;
}

TEST(CompareTest, LinuxBaselineMatchesTableIII) {
  ModelRow row = evaluate_model(passwd_like_epoch(), Model::LinuxCaps);
  EXPECT_EQ(row.verdicts[0], CellVerdict::Vulnerable);  // read devmem
  EXPECT_EQ(row.verdicts[1], CellVerdict::Vulnerable);  // write devmem
  EXPECT_EQ(row.verdicts[2], CellVerdict::Safe);        // bind
  EXPECT_EQ(row.verdicts[3], CellVerdict::Vulnerable);  // kill
}

TEST(CompareTest, SolarisTranslationIsNoWorse) {
  // A naive port keeps the same coarse powers; verdicts match Linux.
  ModelRow linux_row = evaluate_model(passwd_like_epoch(), Model::LinuxCaps);
  ModelRow sol_row =
      evaluate_model(passwd_like_epoch(), Model::SolarisTranslated);
  EXPECT_EQ(linux_row.verdicts, sol_row.verdicts);
}

TEST(CompareTest, SolarisMinimizationRemovesWriteOnlyPower) {
  // A getspnam-style reader epoch: DacReadSearch only. Minimization is a
  // no-op there; the interesting case is the writer epoch, where dropping
  // the read half of DAC_OVERRIDE kills the read-devmem verdict... but
  // Setuid still reaches root. Use an epoch holding ONLY DacOverride.
  attacks::ScenarioInput in;
  in.permitted = {Capability::DacOverride};
  in.creds = Credentials::of_user(1000, 1000);
  in.syscalls = {"open", "chmod", "chown", "unlink", "rename"};

  SolarisNeeds needs;
  needs.dac_override_needs_read = false;  // passwd only writes the new db
  ModelRow translated = evaluate_model(in, Model::SolarisTranslated, needs);
  EXPECT_EQ(translated.verdicts[0], CellVerdict::Vulnerable);
  ModelRow minimized = evaluate_model(in, Model::SolarisMinimized, needs);
  EXPECT_EQ(minimized.verdicts[0], CellVerdict::Safe)
      << "finer granularity should stop the read";
  EXPECT_EQ(minimized.verdicts[1], CellVerdict::Vulnerable)
      << "the write power is genuinely needed and stays";
}

TEST(CompareTest, CapsicumStopsEverything) {
  ModelRow row = evaluate_model(passwd_like_epoch(), Model::Capsicum);
  for (CellVerdict v : row.verdicts) EXPECT_EQ(v, CellVerdict::Safe);
}

TEST(CompareTest, CapsicumRightsAreTheNewAttackSurface) {
  attacks::ScenarioInput in;
  in.permitted = {Capability::NetBindService};
  in.creds = Credentials::of_user(1000, 1000);
  in.syscalls = {"socket", "bind", "connect"};
  // A worker holding CAP_BIND on its sockets can still masquerade — the
  // lesson transfers: don't grant the dangerous right either.
  ModelRow with_bind = evaluate_model(in, Model::Capsicum, {},
                                      rights({CapsicumRight::Bind}));
  EXPECT_EQ(with_bind.verdicts[2], CellVerdict::Vulnerable);
  ModelRow without = evaluate_model(in, Model::Capsicum, {},
                                    rights({CapsicumRight::Read}));
  EXPECT_EQ(without.verdicts[2], CellVerdict::Safe);
}

TEST(CompareTest, AllModelsEnumerated) {
  auto rows = compare_models(passwd_like_epoch());
  ASSERT_EQ(rows.size(), kAllModels.size());
  EXPECT_EQ(model_name(rows[0].model), "linux-caps");
  EXPECT_EQ(model_name(rows[3].model), "capsicum");
  EXPECT_FALSE(rows[1].privileges.empty());
}

}  // namespace
}  // namespace pa::privmodels
