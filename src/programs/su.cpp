// Model of shadow-utils su 4.1.5.1 (Table II), privilege-annotated in the
// AutoPriv style, plus the §VII-D.2 security-refactored variant.
//
// Stock lifecycle (§VII-C): the bulk of execution (argument handling,
// authentication via getspnam with CAP_DAC_READ_SEARCH, password prompt)
// runs while all three capabilities are live; only very late does su use
// CAP_SETGID (supplementary groups + gid switch) and CAP_SETUID (uid
// switch) before running the target command — hence vulnerable for ~88%.
//
// Refactored lifecycle (Table V): immediately after startup su uses
// CAP_SETUID/CAP_SETGID once to plant *two* credential sets — the invoker in
// the real ids, the shadow owner in the effective ids, the target user in
// the saved ids — then drops both capabilities. Every later switch
// (authenticate as `etc`, become the target user) is an unprivileged
// setres[ug]id between those planted ids.
#include "programs/common.h"

namespace pa::programs {

using namespace detail;

namespace {

// Weights per Table III (total ~47.4k dynamic instructions).
constexpr int kAuthWork = 38600;     // su_priv1 ~82.1%
constexpr int kVerifyWork = 2400;    // su_priv2 ~5.2%
constexpr int kGidWindowWork = 120;  // su_priv3 ~0.28%
constexpr int kPreUidWork = 70;      // su_priv4 ~0.17%
constexpr int kUidWindowWork = 34;   // su_priv5 ~0.09%
constexpr int kShellWork = 5600;     // su_priv6 ~12.2%

void emit_run_shell(IRBuilder& b) {
  // Models executing `ls` as the target user.
  b.begin_function("run_shell", 0);
  int fd = b.syscall("open",
                     {B::s("/home/other/data.bin"), B::i(SyscallEncoding::kRead)});
  b.syscall("read", {B::r(fd), B::i(512)});
  b.syscall("close", {B::r(fd)});
  emit_work(b, "shell", kShellWork);
  b.ret(B::i(0));
  b.end_function();
}

}  // namespace

ProgramSpec make_su() {
  ProgramSpec spec;
  spec.name = "su";
  spec.description = "Utility to log in as another user";
  spec.launch_permitted = {Capability::DacReadSearch, Capability::Setgid,
                           Capability::Setuid};
  spec.launch_creds = caps::Credentials::of_user(kUser, kUserGid);
  spec.args = {std::int64_t{kOtherUser}};  // `su other -c ls`
  spec.module = ir::Module("su");

  IRBuilder b(spec.module);
  emit_getspnam(b, "lib_getspnam", /*privileged=*/true);
  emit_run_shell(b);

  b.begin_function("main", 1);  // %0 = target uid
  b.syscall("getuid", {});
  // Session bookkeeping probe; puts kill(2) in the syscall surface.
  b.syscall("kill", {B::i(99999), B::i(0)});
  emit_work(b, "auth", kAuthWork);
  b.call("lib_getspnam");
  // CAP_DAC_READ_SEARCH dead -> removed (su_priv2 begins).
  emit_work(b, "verify", kVerifyWork);
  // Switch groups to the target user (CAP_SETGID).
  b.priv_raise({Capability::Setgid});
  b.syscall("setgroups", {B::r(0)});
  b.syscall("setgid", {B::r(0)});
  b.work(kGidWindowWork);  // su_priv3: gids switched, CAP_SETGID still live
  b.priv_lower({Capability::Setgid});
  // CAP_SETGID dead -> removed (su_priv4).
  b.work(kPreUidWork);
  // Switch uids to the target user (CAP_SETUID).
  b.priv_raise({Capability::Setuid});
  b.syscall("setuid", {B::r(0)});
  b.work(kUidWindowWork);  // su_priv5
  b.priv_lower({Capability::Setuid});
  // CAP_SETUID dead -> removed (su_priv6: run the command unprivileged).
  b.call("run_shell");
  b.exit(B::i(0));
  b.end_function();

  spec.module.recompute_address_taken();
  return spec;
}

ProgramSpec make_su_refactored() {
  ProgramSpec spec;
  spec.name = "suRef";
  spec.description = "su refactored to plant credentials early (§VII-D.2)";
  spec.launch_permitted = {Capability::Setuid, Capability::Setgid};
  spec.launch_creds = caps::Credentials::of_user(kUser, kUserGid);
  spec.args = {std::int64_t{kOtherUser}};
  spec.scenario_extra_users = {kEtcUser, kOtherUser};
  spec.scenario_extra_groups = {kShadowGid, kOtherGid};
  spec.refactored_world = true;
  spec.module = ir::Module("suRef");

  IRBuilder b(spec.module);
  emit_getspnam(b, "lib_getspnam", /*privileged=*/false);
  emit_run_shell(b);

  // Weights per Table V (total ~47.2k).
  constexpr int kRefStartupWork = 250;   // priv1 ~0.56%
  constexpr int kRefWindowWork = 36;     // priv2/priv3: tiny windows
  constexpr int kRefGidWork = 120;       // priv4 ~0.27%
  constexpr int kRefBulkWork = 40800;    // priv6 ~86.7%
  constexpr int kRefSwapWork = 36;       // priv7 ~0.09%

  b.begin_function("main", 1);  // %0 = target uid
  b.syscall("getuid", {});
  b.syscall("kill", {B::i(99999), B::i(0)});
  emit_work(b, "startup", kRefStartupWork);
  // Plant credentials: ruid = invoker (identification), euid = etc (can
  // read the shadow db as its owner), suid = target user.
  b.priv_raise({Capability::Setuid});
  b.syscall("setresuid", {B::i(kUser), B::i(kEtcUser), B::r(0)});
  b.work(kRefWindowWork);  // priv2
  b.priv_lower({Capability::Setuid});
  // CAP_SETUID dead -> removed (priv3: CAP_SETGID only).
  b.work(kRefWindowWork);
  b.priv_raise({Capability::Setgid});
  b.syscall("setgroups", {B::i(kOtherGid)});
  b.syscall("setresgid", {B::i(kUserGid), B::i(kEtcUser), B::i(kOtherGid)});
  b.work(kRefGidWork);  // priv4: planted gids, CAP_SETGID still live
  b.priv_lower({Capability::Setgid});
  // CAP_SETGID dead -> removed (priv6: the long unprivileged bulk).
  b.call("lib_getspnam");
  emit_work(b, "bulk", kRefBulkWork);
  // Become the target user WITHOUT privilege: every id below is one of the
  // current real/effective/saved ids.
  b.syscall("setresgid", {B::r(0), B::r(0), B::r(0)});
  b.work(kRefSwapWork);  // priv7: gid switched, uid still planted
  b.syscall("setresuid", {B::r(0), B::r(0), B::r(0)});
  // priv5: fully the target user, empty permitted set.
  b.call("run_shell");
  b.exit(B::i(0));
  b.end_function();

  spec.module.recompute_address_taken();
  return spec;
}

}  // namespace pa::programs
