// Tests for the textual world-description format (os/worldfile.h).
#include <gtest/gtest.h>

#include "os/worldfile.h"
#include "privanalyzer/loader.h"
#include "privanalyzer/pipeline.h"
#include "support/error.h"

namespace pa::os {
namespace {

const char* kWorld = R"(
# A minimal hardened world.
dir     /etc          owner 998 group 42  mode 0755
file    /etc/shadow   owner 998 group 42  mode 0640  data "hash"
device  /dev/mem      owner 0   group 15  mode 0640  tag mem
dir     /srv          owner 33  group 33  mode 0750
process webd          uid 33    gid 33
)";

TEST(WorldFileTest, BuildsObjects) {
  Kernel k = world_from_text(kWorld);
  auto shadow = k.vfs().lookup("/etc/shadow");
  ASSERT_TRUE(shadow.has_value());
  EXPECT_EQ(k.vfs().inode(*shadow).meta.owner, 998);
  EXPECT_EQ(k.vfs().inode(*shadow).meta.group, 42);
  EXPECT_EQ(k.vfs().inode(*shadow).meta.mode, Mode(0640));
  EXPECT_EQ(k.vfs().inode(*shadow).data, "hash");

  auto etc = k.vfs().lookup("/etc");
  EXPECT_EQ(k.vfs().inode(*etc).meta.owner, 998);

  auto mem = k.vfs().lookup("/dev/mem");
  ASSERT_TRUE(mem.has_value());
  EXPECT_EQ(k.vfs().inode(*mem).type, InodeType::CharDevice);
  EXPECT_EQ(k.vfs().inode(*mem).device_tag, "mem");

  auto pid = k.find_process("webd");
  ASSERT_TRUE(pid.has_value());
  EXPECT_EQ(k.process(*pid).creds.uid.real, 33);
}

TEST(WorldFileTest, QuotedDataKeepsSpaces) {
  Kernel k = world_from_text(
      "file /f owner 0 group 0 mode 0644 data \"two words\"\n");
  EXPECT_EQ(k.vfs().inode(*k.vfs().lookup("/f")).data, "two words");
}

TEST(WorldFileTest, Errors) {
  EXPECT_THROW(world_from_text("banana /x\n"), Error);
  EXPECT_THROW(world_from_text("file relative owner 0\n"), Error);
  EXPECT_THROW(world_from_text("device /d owner 0 group 0 mode 0640\n"),
               Error);  // no tag
  EXPECT_THROW(world_from_text("process d gid 5\n"), Error);  // no uid
  EXPECT_THROW(world_from_text("file /f owner banana\n"), Error);
  EXPECT_THROW(world_from_text("file /f mode 99z9\n"), Error);
}

TEST(WorldFileTest, DrivesThePipeline) {
  // A program that reads /etc/shadow unprivileged succeeds in a world where
  // its euid owns the file, and fails in one where root does.
  const char* prog = R"(
; !permitted:
; !uid: 998
; !gid: 42
func @main(0) {
entry:
  %0 = syscall open("/etc/shadow", 1)
  %1 = cmplt %0, 0
  condbr %1, bad, good
good:
  exit 0
bad:
  exit 1
}
)";
  programs::ProgramSpec spec = privanalyzer::load_program(prog, "reader");

  privanalyzer::PipelineOptions opts;
  opts.run_rosa = false;
  opts.world_factory = [] { return world_from_text(kWorld); };
  privanalyzer::ProgramAnalysis ok = privanalyzer::analyze_program(spec, opts);
  EXPECT_EQ(ok.exit_code, 0);

  opts.world_factory = [] {
    return world_from_text(
        "dir /etc owner 0 group 0 mode 0755\n"
        "file /etc/shadow owner 0 group 0 mode 0600\n");
  };
  privanalyzer::ProgramAnalysis denied =
      privanalyzer::analyze_program(spec, opts);
  EXPECT_EQ(denied.exit_code, 1);
}

}  // namespace
}  // namespace pa::os
