// Unit tests for the support::ThreadPool behind rosa::run_queries: result
// ordering, exception propagation, size-1 == inline execution, and
// no-deadlock on empty / oversubscribed batches.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "support/error.h"
#include "support/thread_pool.h"

namespace pa::support {
namespace {

TEST(ThreadPoolTest, HardwareThreadsNeverZero) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPoolTest, ResultsLandAtTheirSubmissionIndex) {
  // Index-addressed results are the ordering contract run_queries relies
  // on: completion order is arbitrary, placement is not.
  constexpr int kTasks = 200;
  ThreadPool pool(4);
  std::vector<int> results(kTasks, -1);
  for (int i = 0; i < kTasks; ++i)
    pool.submit([&results, i] { results[static_cast<std::size_t>(i)] = i * i; });
  pool.wait_idle();
  for (int i = 0; i < kTasks; ++i)
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i) << i;
}

TEST(ThreadPoolTest, SizeOneRunsTasksInSubmissionOrder) {
  // A pool of one worker is inline execution with extra steps: strict
  // submission order, one task at a time.
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    pool.submit([&order, i] { order.push_back(i); });  // no mutex needed: 1 worker
  pool.wait_idle();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExceptionFromWorkerPropagatesToWaiter) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&completed, i] {
      if (i == 3) throw Error("worker failure");
      ++completed;
    });
  EXPECT_THROW(pool.wait_idle(), Error);
  // The failure neither killed the worker nor poisoned the pool: the other
  // tasks ran and a fresh batch completes cleanly.
  EXPECT_EQ(completed.load(), 9);
  pool.submit([&completed] { ++completed; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(completed.load(), 10);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyBatchReturnsImmediately) {
  ThreadPool pool(4);
  pool.wait_idle();  // nothing submitted: must not deadlock
  pool.wait_idle();  // idempotent
}

TEST(ThreadPoolTest, OversubscribedPoolCompletes) {
  // Far more workers than tasks: idle workers must park, not spin or hang,
  // and destruction must join all of them.
  ThreadPool pool(32);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) pool.submit([&ran] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, ManyTinyTasksOnSmallPool) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  constexpr int kTasks = 2000;
  for (int i = 0; i < kTasks; ++i) pool.submit([&sum, i] { sum += i; });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructionDrainsPendingTasks) {
  // Submitted work is never dropped, even when the pool dies while the
  // queue is non-empty.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) pool.submit([&ran] { ++ran; });
    // no wait_idle(): destructor must finish the queue before joining
  }
  EXPECT_EQ(ran.load(), 100);
}

// --- TaskGroup: scoped sub-batches on a shared pool -------------------------

TEST(ThreadPoolTest, TaskGroupBarrierCoversExactlyItsOwnTasks) {
  ThreadPool pool(4);
  TaskGroup a(pool), b(pool);
  std::atomic<int> a_done{0}, b_done{0};
  for (int i = 0; i < 50; ++i) a.submit([&a_done] { ++a_done; });
  for (int i = 0; i < 30; ++i) b.submit([&b_done] { ++b_done; });
  b.wait();
  EXPECT_EQ(b_done.load(), 30);  // b's barrier covers all of b's tasks...
  a.wait();
  EXPECT_EQ(a_done.load(), 50);  // ...and a's all of a's
}

TEST(ThreadPoolTest, TaskGroupErrorRoutesToItsGroupNotThePool) {
  ThreadPool pool(2);
  TaskGroup failing(pool), healthy(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    failing.submit([&ran, i] {
      if (i == 2) throw Error("grouped failure");
      ++ran;
    });
  for (int i = 0; i < 8; ++i) healthy.submit([&ran] { ++ran; });

  EXPECT_THROW(failing.wait(), Error);
  EXPECT_NO_THROW(healthy.wait());
  // Rethrown once: the group is clean for the next round.
  EXPECT_NO_THROW(failing.wait());
  // The pool-level error slot was never involved.
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 15);
}

TEST(ThreadPoolTest, UngroupedErrorDoesNotLeakIntoGroups) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  pool.submit([] { throw Error("ungrouped failure"); });
  for (int i = 0; i < 4; ++i) group.submit([] {});
  EXPECT_NO_THROW(group.wait());
  EXPECT_THROW(pool.wait_idle(), Error);
}

TEST(ThreadPoolTest, TaskGroupIsReusableAcrossRounds) {
  // The layered ROSA engine runs expand and dedup phases round after round
  // on one shared pool; each phase is one group round.
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) group.submit([&count] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, TaskGroupDestructorWaitsWithoutThrowing) {
  // A group abandoned mid-failure must still act as a barrier (its tasks
  // reference stack state) and must swallow, not rethrow, from the dtor.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 20; ++i)
      group.submit([&ran, i] {
        if (i == 0) throw Error("abandoned failure");
        ++ran;
      });
    // no wait(): the destructor must block until all 20 completed
  }
  EXPECT_EQ(ran.load(), 19);
  EXPECT_NO_THROW(pool.wait_idle());
}

}  // namespace
}  // namespace pa::support
