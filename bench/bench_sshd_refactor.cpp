// Extension experiment: the paper's §VII-C analysis shows sshd retaining 7
// of its 8 capabilities for its entire run (signal handlers that use
// privileges + an indirect call AutoPriv must over-approximate). The paper
// refactors passwd and su but leaves sshd as future work; this bench applies
// the same §VII-E lessons (change credentials early; privilege-separation-
// style startup; unprivileged handlers; direct-call dispatch) and measures
// the improvement with the same pipeline.
#include <iostream>

#include "privanalyzer/render.h"
#include "support/str.h"

using namespace pa;

int main() {
  privanalyzer::PipelineOptions opts;
  opts.rosa_limits.max_states = 1'000'000;

  std::vector<privanalyzer::ProgramAnalysis> analyses;
  analyses.push_back(
      privanalyzer::analyze_program(programs::make_sshd(), opts));
  analyses.push_back(
      privanalyzer::analyze_program(programs::make_sshd_refactored(), opts));

  std::cout << privanalyzer::render_efficacy_table(
      analyses, "sshd before/after §VII-E refactoring (extension)");

  privanalyzer::ExposureSummary before =
      privanalyzer::exposure_of(analyses[0]);
  privanalyzer::ExposureSummary after = privanalyzer::exposure_of(analyses[1]);
  std::cout << "\nExposure to any modeled attack: "
            << str::percent(before.any_attack) << " -> "
            << str::percent(after.any_attack) << " of execution\n\n";

  std::cout
      << "What changed (each fixes one cause the paper identifies in "
         "§VII-C):\n"
         "  1. the SIGCHLD handler no longer raises privileges, so no\n"
         "     capability is pinned live for the program's lifetime;\n"
         "  2. channel dispatch is a direct call, so AutoPriv's conservative\n"
         "     indirect-call resolution has nothing to over-approximate;\n"
         "  3. session credentials are planted once at startup\n"
         "     (CAP_SETUID/CAP_SETGID for a few instructions), making the\n"
         "     per-session user switch an unprivileged setresuid/setresgid.\n";
  return 0;
}
