file(REMOVE_RECURSE
  "../bench/bench_privmodels"
  "../bench/bench_privmodels.pdb"
  "CMakeFiles/bench_privmodels.dir/bench_privmodels.cpp.o"
  "CMakeFiles/bench_privmodels.dir/bench_privmodels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
