# Empty dependencies file for bench_rosa_scaling.
# This may be replaced when dependencies are built.
