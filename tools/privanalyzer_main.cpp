// The `privanalyzer` command-line tool: run the full pipeline on one or more
// PrivIR/PrivC program files.
//
//   privanalyzer prog.pir [more.pir ...] [options]
//     --no-rosa            ChronoPriv epochs only (skip attack analysis)
//     --max-states N       ROSA search budget per query (default 1000000)
//     --max-bytes N        ROSA memory budget per query in arena bytes
//                          (default unlimited; exceeded searches report as
//                          Timeout like exhausted state budgets)
//     --rosa-threads N     worker threads for the (epoch x attack) query
//                          matrix (0 = hardware_concurrency, 1 = serial;
//                          verdicts are identical for every N)
//     --search-threads N   worker threads INSIDE each ROSA search
//                          (work-stealing layered BFS; 0 =
//                          hardware_concurrency, default 1 = classic serial
//                          loop; results are bit-identical for every N)
//     --spill-dir DIR      with --max-bytes: spill cold frontier states to
//                          chunk files under DIR once the in-memory arena
//                          exceeds the byte budget, so over-budget searches
//                          complete (same verdicts) instead of reporting
//                          Timeout; the per-search temp subdirectory is
//                          removed when the search ends
//     --escalate-rounds N  retry ResourceLimit queries with geometrically
//                          doubled budgets, up to N extra rounds (default 0;
//                          shrinks the presumed-invulnerable bucket)
//     --deadline SECS      pipeline-wide wall-clock budget for each
//                          program's query matrix; expired cells report as
//                          Timeout and a warning diagnostic is attached
//     --stats              print per-program ROSA search statistics
//                          (states, transitions, dedup hits, hash
//                          collisions, peak frontier, escalations, cache
//                          hits/misses/joins, wall time)
//     --rosa-cache FILE    persistent ROSA verdict cache: load FILE before
//                          the query matrix (corrupt/stale files are ignored
//                          with a warning) and atomically rewrite it after,
//                          so repeat runs skip unchanged searches entirely
//     --no-rosa-cache      disable ROSA verdict memoization (on by default;
//                          cached runs are bit-identical, this is for A/B
//                          measurement)
//     --attacker MODEL     full | cfi-ordered | fixed-args
//     --print-ir           dump the transformed (post-AutoPriv) program
//     --indirect-calls M   indirect-call resolution for AutoPriv (and
//                          --lint): conservative (every address-taken
//                          function, the paper's AutoPriv), refined
//                          (function-pointer propagation + arity filter;
//                          always a subset), assume-none (unsound ablation)
//     --assume-no-indirect alias for --indirect-calls assume-none
//     --lint               run the PrivLint passes instead of the pipeline;
//                          prints one report per program. Exit codes: 0 all
//                          programs clean, 1 none clean, 3 some clean.
//                          Lint defaults to refined indirect calls unless
//                          --indirect-calls says otherwise.
//     --lint-json          as --lint, but emit a JSON array on stdout
//     --filters MODE       EpochFilter allowlists: off (default) | report
//                          (synthesize per-epoch syscall filters + re-run
//                          the attack matrix against them, print the
//                          EpochFilter block) | enforce (as report, but the
//                          measured run is replayed under kernel-side
//                          filter enforcement; conservative filters are
//                          provably a no-op for legitimate runs)
//     --filter-action A    what an enforced filter does on a denied
//                          syscall: eperm (default; dispatch returns
//                          -EPERM) | kill (SIGSYS-style process kill,
//                          exit code 128+31)
//     --filters-json FILE  write the per-program filter reports as a JSON
//                          array to FILE ('-' = stdout); format documented
//                          in docs/formats.md
//
// Batch runs are fault-isolated: a program that fails to load, verify, or
// analyze is reported on stderr with its structured diagnostics and the
// remaining programs still run. Exit codes: 0 = every program analyzed,
// 1 = every program failed, 2 = usage error, 3 = partial failure (some
// programs analyzed, some failed), 4 = interrupted (SIGINT/SIGTERM).
//
// SIGINT/SIGTERM trigger cooperative cancellation, not _exit: the flag is
// threaded into every ROSA search (rosa::SearchLimits::cancel), so in-flight
// searches stop at their next frontier pop, spill directories are removed by
// their normal RAII cleanup, the persistent --rosa-cache file keeps the
// atomic checkpoints already written for completed programs, and the batch
// exits with the distinct code 4.
#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include <optional>

#include "ir/printer.h"
#include "chronopriv/exposure.h"
#include "lint/lint.h"
#include "privanalyzer/advisor.h"
#include "os/worldfile.h"
#include "privanalyzer/export.h"
#include "privanalyzer/loader.h"
#include "privanalyzer/render.h"
#include "support/diagnostics.h"
#include "support/error.h"

using namespace pa;

namespace {

/// Set by the SIGINT/SIGTERM handler; polled by every ROSA search through
/// SearchLimits::cancel and by the batch loop between programs.
std::atomic<bool> g_interrupted{false};

void handle_interrupt(int) { g_interrupted.store(true); }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_interrupt;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <prog.pir> [more programs...] [--no-rosa] [--max-states N]\n"
               "       [--max-bytes N] [--search-threads N] [--spill-dir DIR]\n"
               "       [--no-reduction] [--no-fused-search]\n"
               "       [--rosa-threads N] [--escalate-rounds N] [--deadline SECS]\n"
               "       [--attacker full|cfi-ordered|fixed-args] [--print-ir]\n"
               "       [--indirect-calls conservative|refined|assume-none]\n"
               "       [--assume-no-indirect] [--world-file world.world]\n"
               "       [--simplify] [--stats] [--rosa-cache FILE]\n"
               "       [--no-rosa-cache] [--lint] [--lint-json]\n"
               "       [--filters off|report|enforce] [--filter-action "
               "eperm|kill]\n"
               "       [--filters-json FILE]\n"
               "exit codes: 0 ok, 1 all programs failed, 2 usage, 3 partial "
               "failure,\n             4 interrupted (SIGINT/SIGTERM)\n";
  return privanalyzer::kExitUsage;
}

// Parse a non-negative integer flag value. Returns false (caller prints
// usage) on garbage instead of letting std::stoull terminate the process;
// the parse failure itself is reported so the user sees *why* the flag was
// rejected, not just the usage text.
bool parse_count(const std::string& s, unsigned long long* out) {
  try {
    std::size_t pos = 0;
    *out = std::stoull(s, &pos);
    return !s.empty() && pos == s.size();
  } catch (const std::exception& e) {
    std::cerr << "error: bad count '" << s << "': " << e.what() << "\n";
    return false;
  }
}

bool parse_seconds(const std::string& s, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(s, &pos);
    return !s.empty() && pos == s.size() && *out >= 0;
  } catch (const std::exception& e) {
    std::cerr << "error: bad duration '" << s << "': " << e.what() << "\n";
    return false;
  }
}

std::optional<ir::IndirectCallPolicy> parse_policy(const std::string& m) {
  if (m == "conservative") return ir::IndirectCallPolicy::Conservative;
  if (m == "refined") return ir::IndirectCallPolicy::Refined;
  if (m == "assume-none") return ir::IndirectCallPolicy::AssumeNone;
  std::cerr << "error: bad indirect-call policy '" << m
            << "' (want conservative|refined|assume-none)\n";
  return std::nullopt;
}

/// `--lint` / `--lint-json` mode: load + lint each program, no pipeline.
/// A program counts as failed if it does not load or has any finding.
int run_lint_batch(const std::vector<std::string>& paths,
                   const lint::LintOptions& lopts, bool json) {
  std::vector<lint::LintReport> reports;
  std::size_t failed = 0;
  for (const std::string& path : paths) {
    try {
      programs::ProgramSpec spec = privanalyzer::load_program_file(path);
      reports.push_back(lint::run_lints(spec, lopts));
      if (!reports.back().clean()) ++failed;
    } catch (const std::exception& e) {
      ++failed;
      std::cerr << support::diagnostic_from_exception(
                       e, support::Stage::Loader, path)
                       .to_string()
                << "\n";
    }
  }
  if (json) std::cout << privanalyzer::lint_reports_to_json(reports);
  else std::cout << privanalyzer::render_lint_reports(reports);
  if (failed == 0) return privanalyzer::kExitOk;
  if (failed == paths.size()) return privanalyzer::kExitAllFailed;
  return privanalyzer::kExitPartialFailure;
}

/// Run + render one program; load/analyze failures are folded into the
/// returned analysis (never thrown) so the batch loop keeps going.
privanalyzer::ProgramAnalysis run_one(
    const std::string& path, const privanalyzer::PipelineOptions& opts,
    rosa::AttackerModel attacker, bool print_ir, bool print_stats) {
  programs::ProgramSpec spec;
  try {
    spec = privanalyzer::load_program_file(path);
  } catch (const std::exception& e) {
    privanalyzer::ProgramAnalysis failed;
    failed.status = privanalyzer::AnalysisStatus::Failed;
    std::string base = path;
    if (auto slash = base.find_last_of('/'); slash != std::string::npos)
      base = base.substr(slash + 1);
    failed.diagnostics.push_back(support::diagnostic_from_exception(
        e, support::Stage::Loader, base));
    failed.program = failed.diagnostics.back().program;
    std::cerr << privanalyzer::render_analysis_diagnostics(failed);
    return failed;
  }

  privanalyzer::ProgramAnalysis analysis =
      privanalyzer::try_analyze_program(spec, opts);
  if (!analysis.ok()) {
    std::cerr << privanalyzer::render_analysis_diagnostics(analysis);
    return analysis;
  }

  // Re-run the scenarios manually when a non-default attacker model is
  // requested (the model is threaded through the ScenarioInputs).
  if (attacker != rosa::AttackerModel::Full && opts.run_rosa) {
    auto syscalls = spec.syscalls_used();
    std::vector<attacks::ScenarioInput> inputs;
    for (const chronopriv::EpochRow& row : analysis.chrono.rows) {
      attacks::ScenarioInput in = attacks::scenario_from_epoch(
          row, syscalls, spec.scenario_extra_users,
          spec.scenario_extra_groups);
      in.attacker = attacker;
      inputs.push_back(std::move(in));
    }
    analysis.verdicts = attacks::analyze_epochs(
        analysis.chrono.rows, inputs, opts.rosa_limits, opts.rosa_threads,
        rosa::EscalationPolicy{opts.rosa_escalation_rounds, 2.0},
        opts.rosa_cache_instance.get());
  }

  std::cout << "Loaded " << spec.name << " ("
            << spec.module.countable_instructions()
            << " static instructions), launch permitted {"
            << spec.launch_permitted.to_string() << "}\n\n";
  std::cout << analysis.autopriv_report.to_string() << "\n";
  if (print_ir)
    std::cout << "=== transformed IR ===\n"
              << ir::print(privanalyzer::transformed_module(spec, opts.autopriv))
              << "\n";
  std::cout << analysis.chrono.to_string() << "\n";
  std::cout << chronopriv::render_exposure(analysis.chrono) << "\n";
  std::cout << privanalyzer::render_advice(privanalyzer::advise(spec, analysis))
            << "\n";
  if (opts.run_rosa) {
    std::cout << privanalyzer::render_attack_table() << "\n"
              << privanalyzer::render_efficacy_table(
                     {analysis},
                     std::string("Efficacy (attacker: ") +
                         std::string(rosa::attacker_model_name(attacker)) +
                         ")");
    if (print_stats)
      std::cout << "\n" << privanalyzer::render_search_stats({analysis});
  }
  if (!analysis.filter_report.empty())
    std::cout << "\n" << privanalyzer::render_filter_report({analysis});
  // Degraded-but-ok analyses (e.g. deadline warnings) report on stderr too.
  std::cerr << privanalyzer::render_analysis_diagnostics(analysis);
  return analysis;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  install_signal_handlers();
  std::vector<std::string> paths;
  privanalyzer::PipelineOptions opts;
  rosa::AttackerModel attacker = rosa::AttackerModel::Full;
  bool print_ir = false;
  bool print_stats = false;
  bool lint_mode = false;
  bool lint_json = false;
  std::string filters_json_file;
  std::optional<ir::IndirectCallPolicy> indirect_override;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--no-rosa") {
      opts.run_rosa = false;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--rosa-threads" && i + 1 < argc) {
      unsigned long long n = 0;
      if (!parse_count(argv[++i], &n)) return usage(argv[0]);
      opts.rosa_threads = static_cast<unsigned>(n);
    } else if (arg == "--escalate-rounds" && i + 1 < argc) {
      unsigned long long n = 0;
      if (!parse_count(argv[++i], &n)) return usage(argv[0]);
      opts.rosa_escalation_rounds = static_cast<unsigned>(n);
    } else if (arg == "--deadline" && i + 1 < argc) {
      double secs = 0;
      if (!parse_seconds(argv[++i], &secs)) return usage(argv[0]);
      opts.max_total_seconds = secs;
    } else if (arg == "--rosa-cache" && i + 1 < argc) {
      opts.rosa_cache_file = argv[++i];
    } else if (arg == "--no-rosa-cache") {
      opts.rosa_cache = false;
    } else if (arg == "--simplify") {
      opts.simplify_after_autopriv = true;
    } else if (arg == "--print-ir") {
      print_ir = true;
    } else if (arg == "--assume-no-indirect") {
      indirect_override = ir::IndirectCallPolicy::AssumeNone;
    } else if (arg == "--indirect-calls" && i + 1 < argc) {
      indirect_override = parse_policy(argv[++i]);
      if (!indirect_override) return usage(argv[0]);
    } else if (arg.rfind("--indirect-calls=", 0) == 0) {
      indirect_override = parse_policy(arg.substr(strlen("--indirect-calls=")));
      if (!indirect_override) return usage(argv[0]);
    } else if (arg == "--lint") {
      lint_mode = true;
    } else if (arg == "--lint-json") {
      lint_mode = true;
      lint_json = true;
    } else if (arg == "--filters" && i + 1 < argc) {
      auto mode = privanalyzer::parse_filter_mode(argv[++i]);
      if (!mode) return usage(argv[0]);
      opts.filters = *mode;
    } else if (arg.rfind("--filters=", 0) == 0) {
      auto mode =
          privanalyzer::parse_filter_mode(arg.substr(strlen("--filters=")));
      if (!mode) return usage(argv[0]);
      opts.filters = *mode;
    } else if (arg == "--filter-action" && i + 1 < argc) {
      std::string a = argv[++i];
      if (a == "eperm") opts.filter_action = os::FilterAction::Eperm;
      else if (a == "kill") opts.filter_action = os::FilterAction::Kill;
      else return usage(argv[0]);
    } else if (arg == "--filters-json" && i + 1 < argc) {
      filters_json_file = argv[++i];
    } else if (arg == "--world-file" && i + 1 < argc) {
      std::string wpath = argv[++i];
      opts.world_factory = [wpath] { return os::world_from_file(wpath); };
    } else if (arg == "--max-states" && i + 1 < argc) {
      unsigned long long n = 0;
      if (!parse_count(argv[++i], &n)) return usage(argv[0]);
      opts.rosa_limits.max_states = static_cast<std::size_t>(n);
    } else if (arg == "--max-bytes" && i + 1 < argc) {
      unsigned long long n = 0;
      if (!parse_count(argv[++i], &n)) return usage(argv[0]);
      opts.rosa_limits.max_bytes = static_cast<std::size_t>(n);
    } else if (arg == "--search-threads" && i + 1 < argc) {
      unsigned long long n = 0;
      if (!parse_count(argv[++i], &n)) return usage(argv[0]);
      opts.rosa_limits.search_threads = static_cast<unsigned>(n);
    } else if (arg == "--spill-dir" && i + 1 < argc) {
      opts.rosa_limits.spill_dir = argv[++i];
    } else if (arg == "--no-reduction") {
      opts.rosa_limits.reduction = false;
    } else if (arg == "--no-fused-search") {
      opts.rosa_limits.fused = false;
    } else if (arg == "--attacker" && i + 1 < argc) {
      std::string m = argv[++i];
      if (m == "full") attacker = rosa::AttackerModel::Full;
      else if (m == "cfi-ordered") attacker = rosa::AttackerModel::CfiOrdered;
      else if (m == "fixed-args") attacker = rosa::AttackerModel::FixedArgs;
      else return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);
  if (indirect_override)
    opts.autopriv.indirect_calls = *indirect_override;
  if (lint_mode) {
    lint::LintOptions lopts;  // defaults to refined indirect calls
    if (indirect_override) lopts.indirect_calls = *indirect_override;
    return run_lint_batch(paths, lopts, lint_json);
  }
  if (!opts.rosa_cache && !opts.rosa_cache_file.empty()) {
    std::cerr << "error: --rosa-cache and --no-rosa-cache conflict\n";
    return usage(argv[0]);
  }
  // --filters-json without an explicit mode implies report (otherwise the
  // export would always be an empty array).
  if (!filters_json_file.empty() &&
      opts.filters == privanalyzer::FilterMode::Off)
    opts.filters = privanalyzer::FilterMode::Report;
  // One verdict cache for the whole batch, so program N+1 reuses program
  // N's searches (and the persistent file, when given, is shared).
  if (opts.rosa_cache)
    opts.rosa_cache_instance = std::make_shared<rosa::QueryCache>();

  // Cooperative interruption: every search polls this flag at its frontier
  // pops, so Ctrl-C unwinds through the normal return path (spill-dir RAII
  // cleanup, per-program cache flushes) instead of killing the process.
  opts.rosa_limits.cancel = &g_interrupted;

  // Per-program isolation: one bad file reports its diagnostics and the
  // rest of the batch still runs; the exit code distinguishes partial from
  // total failure.
  std::vector<privanalyzer::ProgramAnalysis> analyses;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (g_interrupted.load()) break;
    if (i > 0) std::cout << "\n" << std::string(72, '=') << "\n\n";
    analyses.push_back(
        run_one(paths[i], opts, attacker, print_ir, print_stats));
  }
  if (g_interrupted.load()) {
    std::cerr << "interrupted: cancelled in-flight searches and skipped "
              << (paths.size() - analyses.size())
              << " remaining program(s) (exit code "
              << privanalyzer::kExitInterrupted << ")\n";
    return privanalyzer::kExitInterrupted;
  }
  if (!filters_json_file.empty()) {
    const std::string json = privanalyzer::filters_to_json(analyses);
    if (filters_json_file == "-") {
      std::cout << json;
    } else {
      std::ofstream out(filters_json_file);
      out << json;
      if (!out) {
        std::cerr << "error: cannot write " << filters_json_file << "\n";
        return privanalyzer::kExitUsage;
      }
    }
  }
  const int code =
      privanalyzer::batch_exit_code(analyses, /*empty_is_failure=*/true);
  if (code == privanalyzer::kExitPartialFailure)
    std::cerr << "warning: some programs failed; see diagnostics above "
                 "(exit code " << code << ")\n";
  return code;
}
