#include "dataflow/dce.h"

namespace pa::dataflow {

bool is_pure(const ir::Instruction& inst) {
  if (inst.dest == ir::kNoReg) return false;
  switch (inst.op) {
    case ir::Opcode::Mov:
    case ir::Opcode::Add: case ir::Opcode::Sub: case ir::Opcode::Mul:
    case ir::Opcode::Div:
    case ir::Opcode::CmpEq: case ir::Opcode::CmpNe: case ir::Opcode::CmpLt:
    case ir::Opcode::CmpLe: case ir::Opcode::CmpGt: case ir::Opcode::CmpGe:
    case ir::Opcode::And: case ir::Opcode::Or: case ir::Opcode::Not:
    case ir::Opcode::FuncAddr:
      return true;
    default:
      return false;
  }
}

int eliminate_dead_code(ir::Function& f) {
  int removed_total = 0;
  for (;;) {
    Facts<RegSet> facts = live_registers(f);
    int removed = 0;
    for (std::size_t b = 0; b < f.blocks().size(); ++b) {
      ir::BasicBlock& bb = f.blocks()[b];
      // Walk backwards computing liveness after each instruction.
      RegSet live = facts.out[b];
      std::vector<char> keep(bb.instructions.size(), 1);
      for (int i = static_cast<int>(bb.instructions.size()) - 1; i >= 0; --i) {
        const ir::Instruction& inst = bb.instructions[static_cast<std::size_t>(i)];
        const bool dead =
            is_pure(inst) && !live.contains(inst.dest);
        if (dead) {
          keep[static_cast<std::size_t>(i)] = 0;
          ++removed;
          continue;  // a dead instruction contributes no uses
        }
        if (auto d = def_of(inst)) live.erase(*d);
        for (int u : uses_of(inst)) live.insert(u);
      }
      if (removed) {
        std::vector<ir::Instruction> kept;
        kept.reserve(bb.instructions.size());
        for (std::size_t i = 0; i < bb.instructions.size(); ++i)
          if (keep[i]) kept.push_back(std::move(bb.instructions[i]));
        bb.instructions = std::move(kept);
      }
    }
    removed_total += removed;
    if (removed == 0) break;
    f.resolve_labels();
  }
  return removed_total;
}

int eliminate_dead_code(ir::Module& m) {
  int total = 0;
  for (ir::Function& f : m.functions()) total += eliminate_dead_code(f);
  if (total) m.recompute_address_taken();
  return total;
}

}  // namespace pa::dataflow
