file(REMOVE_RECURSE
  "CMakeFiles/rosa_rules_test.dir/rosa_rules_test.cpp.o"
  "CMakeFiles/rosa_rules_test.dir/rosa_rules_test.cpp.o.d"
  "rosa_rules_test"
  "rosa_rules_test.pdb"
  "rosa_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosa_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
