#include "programs/diff.h"

#include <set>

#include "support/str.h"

namespace pa::programs {
namespace {

std::string group_of(const std::string& fname) {
  return str::starts_with(fname, "lib_") ? "library" : "program";
}

/// Multiset of rendered instructions for one function (rendering abstracts
/// register numbers poorly, but the models are small and the measure is a
/// churn count, not a patch).
std::multiset<std::string> lines_of(const ir::Function& f) {
  std::multiset<std::string> out;
  for (const ir::BasicBlock& bb : f.blocks())
    for (const ir::Instruction& inst : bb.instructions)
      out.insert(inst.to_string());
  return out;
}

/// |a \ b| with multiset semantics.
int multiset_minus(const std::multiset<std::string>& a,
                   const std::multiset<std::string>& b) {
  int count = 0;
  for (auto it = a.begin(); it != a.end(); it = a.upper_bound(*it)) {
    const int ca = static_cast<int>(a.count(*it));
    const int cb = static_cast<int>(b.count(*it));
    if (ca > cb) count += ca - cb;
  }
  return count;
}

}  // namespace

std::map<std::string, DiffCounts> diff_programs(const ir::Module& before,
                                                const ir::Module& after) {
  std::map<std::string, DiffCounts> out;
  std::set<std::string> names;
  for (const ir::Function& f : before.functions()) names.insert(f.name());
  for (const ir::Function& f : after.functions()) names.insert(f.name());

  for (const std::string& name : names) {
    std::multiset<std::string> a, b;
    if (before.has_function(name)) a = lines_of(before.function(name));
    if (after.has_function(name)) b = lines_of(after.function(name));
    DiffCounts& dc = out[group_of(name)];
    dc.added += multiset_minus(b, a);
    dc.deleted += multiset_minus(a, b);
  }
  return out;
}

DiffCounts total_diff(const ir::Module& before, const ir::Module& after) {
  DiffCounts total;
  for (const auto& [group, dc] : diff_programs(before, after)) {
    total.added += dc.added;
    total.deleted += dc.deleted;
  }
  return total;
}

}  // namespace pa::programs
