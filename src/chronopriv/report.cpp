#include "chronopriv/report.h"

#include <sstream>

#include "support/str.h"

namespace pa::chronopriv {

ChronoReport make_report(const std::string& program,
                         const EpochTracker& tracker) {
  ChronoReport report;
  report.program = program;
  report.total_instructions = tracker.total_instructions();
  int n = 0;
  for (const Epoch& e : tracker.epochs()) {
    EpochRow row;
    row.name = str::cat(program, "_priv", ++n);
    row.key = e.key;
    row.instructions = e.instructions;
    row.fraction = report.total_instructions == 0
                       ? 0.0
                       : static_cast<double>(e.instructions) /
                             static_cast<double>(report.total_instructions);
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string render_timeline(const EpochTracker& tracker) {
  std::ostringstream os;
  os << "Privilege timeline (" << tracker.timeline().size()
     << " segments):\n";
  for (const EpochSegment& seg : tracker.timeline()) {
    os << "  [" << str::pad_left(str::with_commas(
                       static_cast<long long>(seg.start)), 12)
       << " +" << str::pad_left(str::with_commas(
                       static_cast<long long>(seg.length)), 12)
       << "]  uid=" << seg.key.creds.uid.to_string()
       << " gid=" << seg.key.creds.gid.to_string() << "  {"
       << seg.key.permitted.to_string() << "}\n";
  }
  return os.str();
}

std::string ChronoReport::to_string() const {
  std::ostringstream os;
  os << "ChronoPriv report for " << program << " ("
     << str::with_commas(static_cast<long long>(total_instructions))
     << " instructions)\n";
  for (const EpochRow& r : rows) {
    os << "  " << str::pad_right(r.name, 18) << " "
       << str::pad_left(str::with_commas(static_cast<long long>(r.instructions)), 14)
       << " (" << str::percent(r.fraction) << ")  uid="
       << r.key.creds.uid.to_string() << " gid=" << r.key.creds.gid.to_string()
       << "\n    permitted: " << r.key.permitted.to_string() << "\n";
  }
  return os.str();
}

}  // namespace pa::chronopriv
