file(REMOVE_RECURSE
  "CMakeFiles/exposure_graph_test.dir/exposure_graph_test.cpp.o"
  "CMakeFiles/exposure_graph_test.dir/exposure_graph_test.cpp.o.d"
  "exposure_graph_test"
  "exposure_graph_test.pdb"
  "exposure_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exposure_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
