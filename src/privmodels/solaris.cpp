#include "privmodels/solaris.h"

#include <array>

#include "support/error.h"
#include "support/str.h"

namespace pa::privmodels {
namespace {

constexpr std::array<std::string_view, kNumSolarisPrivs> kNames = {
    "file_dac_read",  "file_dac_write", "file_dac_search", "file_chown",
    "file_chown_self", "file_owner",    "file_setid",      "proc_setid",
    "proc_owner",      "proc_session",  "net_privaddr",    "net_rawaccess",
    "proc_chroot",     "sys_mount",
};

caps::CapSet bit(SolarisPriv p) {
  return caps::CapSet::from_raw(std::uint64_t{1} << static_cast<int>(p));
}

}  // namespace

std::string_view solaris_priv_name(SolarisPriv p) {
  int i = static_cast<int>(p);
  PA_CHECK(i >= 0 && i < kNumSolarisPrivs, "solaris privilege out of range");
  return kNames[static_cast<std::size_t>(i)];
}

std::optional<SolarisPriv> parse_solaris_priv(std::string_view name) {
  for (int i = 0; i < kNumSolarisPrivs; ++i)
    if (kNames[static_cast<std::size_t>(i)] == name)
      return static_cast<SolarisPriv>(i);
  return std::nullopt;
}

SolarisSet solaris_set(std::initializer_list<SolarisPriv> privs) {
  SolarisSet out;
  for (SolarisPriv p : privs) out |= bit(p);
  return out;
}

bool solaris_has(SolarisSet set, SolarisPriv p) {
  return (set.raw() >> static_cast<int>(p)) & 1;
}

std::string solaris_to_string(SolarisSet set) {
  if (set.empty()) return "(none)";
  std::vector<std::string> names;
  for (int i = 0; i < kNumSolarisPrivs; ++i)
    if ((set.raw() >> i) & 1)
      names.emplace_back(kNames[static_cast<std::size_t>(i)]);
  return str::join(names, ",");
}

SolarisSet from_linux(caps::CapSet linux_caps) {
  using caps::Capability;
  SolarisSet out;
  auto map = [&](Capability c, std::initializer_list<SolarisPriv> privs) {
    if (linux_caps.contains(c)) out |= solaris_set(privs);
  };
  map(Capability::DacOverride, {SolarisPriv::FileDacRead,
                                SolarisPriv::FileDacWrite,
                                SolarisPriv::FileDacSearch});
  map(Capability::DacReadSearch,
      {SolarisPriv::FileDacRead, SolarisPriv::FileDacSearch});
  map(Capability::Chown, {SolarisPriv::FileChown});
  map(Capability::Fowner, {SolarisPriv::FileOwner});
  map(Capability::Fsetid, {SolarisPriv::FileSetid});
  map(Capability::Setuid, {SolarisPriv::ProcSetid});
  map(Capability::Setgid, {SolarisPriv::ProcSetid});
  map(Capability::Kill, {SolarisPriv::ProcOwner, SolarisPriv::ProcSession});
  map(Capability::NetBindService, {SolarisPriv::NetPrivaddr});
  map(Capability::NetRaw, {SolarisPriv::NetRawaccess});
  map(Capability::SysChroot, {SolarisPriv::ProcChroot});
  return out;
}

SolarisSet from_linux_minimized(caps::CapSet linux_caps, SolarisNeeds needs) {
  SolarisSet out = from_linux(linux_caps);
  if (!needs.dac_override_needs_read &&
      linux_caps.contains(caps::Capability::DacOverride) &&
      !linux_caps.contains(caps::Capability::DacReadSearch)) {
    // The program only writes via its override privilege (passwd updating
    // the shadow database): drop the read half Linux forced on it.
    out -= solaris_set({SolarisPriv::FileDacRead});
  }
  return out;
}

bool SolarisChecker::file_access(const caps::Credentials& creds,
                                 caps::CapSet privs, const os::FileMeta& meta,
                                 os::AccessKind kind) const {
  if (os::dac_allows(creds, meta, kind)) return true;
  switch (kind) {
    case os::AccessKind::Read:
      return solaris_has(privs, SolarisPriv::FileDacRead);
    case os::AccessKind::Write:
      return solaris_has(privs, SolarisPriv::FileDacWrite);
    case os::AccessKind::Execute:
      // PRIV_FILE_DAC_EXECUTE is not modelled; no execute override.
      return false;
  }
  return false;
}

bool SolarisChecker::dir_search(const caps::Credentials& creds,
                                caps::CapSet privs,
                                const os::FileMeta& dir) const {
  return os::dac_allows(creds, dir, os::AccessKind::Execute) ||
         solaris_has(privs, SolarisPriv::FileDacSearch);
}

bool SolarisChecker::can_chmod(const caps::Credentials& creds,
                               caps::CapSet privs,
                               const os::FileMeta& meta) const {
  return creds.uid.effective == meta.owner ||
         solaris_has(privs, SolarisPriv::FileOwner);
}

bool SolarisChecker::can_chown(const caps::Credentials& creds,
                               caps::CapSet privs, const os::FileMeta& meta,
                               int owner, int group) const {
  if (solaris_has(privs, SolarisPriv::FileChown)) return true;
  const bool is_owner = creds.uid.effective == meta.owner;
  // rstchown-style semantics: without FILE_CHOWN, the owner may only give
  // the file away when holding FILE_CHOWN_SELF, and may only move the group
  // within their own group list.
  if (!is_owner) return false;
  if (owner != caps::kWildcardId && owner != meta.owner &&
      !solaris_has(privs, SolarisPriv::FileChownSelf))
    return false;
  if (group != caps::kWildcardId && group != meta.group &&
      !creds.in_group(group))
    return false;
  return true;
}

bool SolarisChecker::can_unlink(const caps::Credentials& creds,
                                caps::CapSet privs, const os::FileMeta& dir,
                                const os::FileMeta& victim) const {
  if (!dir_search(creds, privs, dir)) return false;
  if (!file_access(creds, privs, dir, os::AccessKind::Write)) return false;
  if (dir.mode.has(os::Mode::kSticky)) {
    if (creds.uid.effective != victim.owner &&
        creds.uid.effective != dir.owner &&
        !solaris_has(privs, SolarisPriv::FileOwner))
      return false;
  }
  return true;
}

bool SolarisChecker::can_kill(const caps::Credentials& creds,
                              caps::CapSet privs,
                              const caps::IdTriple& victim_uid) const {
  if (solaris_has(privs, SolarisPriv::ProcOwner)) return true;
  return creds.uid.effective == victim_uid.real ||
         creds.uid.effective == victim_uid.saved ||
         creds.uid.real == victim_uid.real ||
         creds.uid.real == victim_uid.saved;
}

bool SolarisChecker::can_bind(const caps::Credentials& creds,
                              caps::CapSet privs, int port) const {
  (void)creds;
  if (port < 0 || port > 65535) return false;
  if (port > os::kPrivilegedPortMax || port == 0) return true;
  return solaris_has(privs, SolarisPriv::NetPrivaddr);
}

bool SolarisChecker::can_raw_socket(const caps::Credentials& creds,
                                    caps::CapSet privs) const {
  (void)creds;
  return solaris_has(privs, SolarisPriv::NetRawaccess);
}

bool SolarisChecker::setid_privileged(const caps::Credentials& creds,
                                      caps::CapSet privs, bool is_uid) const {
  (void)creds;
  (void)is_uid;
  return solaris_has(privs, SolarisPriv::ProcSetid);
}

const SolarisChecker& solaris_checker() {
  static const SolarisChecker instance;
  return instance;
}

}  // namespace pa::privmodels
