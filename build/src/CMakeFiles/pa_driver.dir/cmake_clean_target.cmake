file(REMOVE_RECURSE
  "libpa_driver.a"
)
