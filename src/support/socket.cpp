#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/diagnostics.h"
#include "support/faultpoint.h"
#include "support/str.h"

namespace pa::support {

namespace {

[[noreturn]] void fail_io(const std::string& what) {
  fail_stage(Stage::Daemon, DiagCode::ProtocolError, "",
             str::cat(what, ": ", std::strerror(errno)));
}

/// poll() one fd for `events`, retrying EINTR. Returns false on timeout.
bool poll_one(int fd, short events, int timeout_ms) {
  pollfd p{fd, events, 0};
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return true;
    if (r == 0) return false;
    if (errno != EINTR) fail_io("poll");
  }
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    fail_stage(Stage::Daemon, DiagCode::BadFieldValue, "",
               str::cat("bad unix socket path '", path, "' (empty or longer ",
                        "than ", sizeof(addr.sun_path) - 1, " bytes)"));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::write_all(const void* data, std::size_t n) {
  PA_FAULTPOINT("daemon.write");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail_io("socket write");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool Socket::read_exact(void* data, std::size_t n, int timeout_ms) {
  PA_FAULTPOINT("daemon.read");
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    if (!poll_one(fd_, POLLIN, timeout_ms))
      fail_stage(Stage::Daemon, DiagCode::ProtocolError, "",
                 "socket read timed out");
    const ssize_t r = ::read(fd_, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      fail_io("socket read");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean close between frames
      fail_stage(Stage::Daemon, DiagCode::ProtocolError, "",
                 str::cat("peer closed mid-frame (", got, " of ", n,
                          " bytes read)"));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool Socket::readable(int timeout_ms) {
  return poll_one(fd_, POLLIN, timeout_ms);
}

UnixListener::UnixListener(const std::string& path, int backlog) : path_(path) {
  const sockaddr_un addr = make_addr(path);
  ::unlink(path.c_str());  // stale socket from a crashed predecessor
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) fail_io("socket");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd_, backlog) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_io(str::cat("bind/listen on ", path));
  }
  if (::pipe(wake_pipe_) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail_io("pipe");
  }
}

UnixListener::~UnixListener() {
  shutdown();
  for (int& fd : wake_pipe_)
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
}

void UnixListener::shutdown() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
  if (wake_pipe_[1] >= 0) {
    const char b = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

std::optional<Socket> UnixListener::accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  pollfd ps[2] = {{fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
  for (;;) {
    const int r = ::poll(ps, 2, timeout_ms);
    if (r == 0) return std::nullopt;
    if (r < 0) {
      if (errno == EINTR) continue;
      fail_io("poll");
    }
    break;
  }
  if (ps[1].revents != 0 || fd_ < 0) return std::nullopt;  // shut down
  PA_FAULTPOINT("daemon.accept");
  for (;;) {
    const int c = ::accept(fd_, nullptr, nullptr);
    if (c >= 0) return Socket(c);
    if (errno == EINTR) continue;
    // A connection that was reset between poll and accept is not an error
    // worth reaping the listener over.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK)
      return std::nullopt;
    fail_io("accept");
  }
}

Socket connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_io("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_io(str::cat("connect to ", path));
  }
  return Socket(fd);
}

}  // namespace pa::support
