// Machine-readable exports of pipeline results: CSV (for plotting the
// paper's figures) and Markdown (for reports/PRs). Complements the
// plain-text rendering in privanalyzer/render.h.
#pragma once

#include <string>
#include <vector>

#include "lint/lint.h"
#include "privanalyzer/efficacy.h"

namespace pa::privanalyzer {

/// PrivLint reports as a JSON array, one object per program with its
/// findings and !lint-allow-suppressed findings (`privanalyzer --lint-json`).
std::string lint_reports_to_json(const std::vector<lint::LintReport>& reports);

/// Epoch table as CSV:
/// program,epoch,permitted,ruid,euid,suid,rgid,egid,sgid,instructions,fraction
std::string epochs_to_csv(const chronopriv::ChronoReport& report);

/// Full efficacy matrix as CSV:
/// program,epoch,fraction,attack1,attack2,attack3,attack4 (V/x/T cells).
std::string efficacy_to_csv(const std::vector<ProgramAnalysis>& analyses);

/// Full efficacy matrix as a GitHub-flavoured Markdown table.
std::string efficacy_to_markdown(const std::vector<ProgramAnalysis>& analyses);

/// Per-query ROSA search statistics as CSV:
/// program,epoch,attack,verdict,states,transitions,dedup_hits,
/// hash_collisions,peak_frontier,peak_bytes,bytes_per_state,
/// spilled_states,spill_bytes,symmetry_pruned,por_pruned,escalations,
/// cache_hits,cache_misses,cache_joins,seconds
std::string search_stats_to_csv(const std::vector<ProgramAnalysis>& analyses);

/// Per-epoch EpochFilter metrics as CSV (empty-report analyses skipped):
/// program,epoch,conservative_size,refined_size,surface,reduced,
/// baseline_vulnerable,filtered_vulnerable
/// where the vulnerable columns are the epoch-weighted any-attack verdict
/// cells ("V"/"x"/"T" per attack, joined without separators).
std::string filters_to_csv(const std::vector<ProgramAnalysis>& analyses);

/// Per-program filter reports as a JSON array (filters::filters_to_json
/// objects; documented in docs/formats.md). Analyses without a report are
/// skipped; "[]" when none have one.
std::string filters_to_json(const std::vector<ProgramAnalysis>& analyses);

}  // namespace pa::privanalyzer
