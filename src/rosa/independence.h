// Partial-order reduction for ROSA: a static independence relation over a
// query's messages, and ample-set selection per frontier pop.
//
// Two one-shot messages are *independent* when their static read/write
// footprints over an abstract resource vocabulary (per-process credentials,
// fd-sets, running flags, sockets; per-file metadata; the directory
// structure; the object-id allocator; the port namespace) are
// non-conflicting: neither writes anything the other reads or writes. For
// such a pair, firing order commutes exactly — same transitions enabled,
// same successor states — so exploring both interleavings is redundant.
//
// At each frontier pop the engine asks for candidate *ample sets*:
// dependence-closed subsets of the unconsumed messages containing no
// goal-visible message. Expanding only the ample set and deferring the rest
// preserves goal reachability (hence verdicts, vulnerable_fractions, and
// witness existence):
//
//   Soundness sketch (induction on |unconsumed(s)|, possible because
//   messages are one-shot, so the state graph is a DAG and the classic
//   "ignoring problem" cannot arise — no cycle can defer a message
//   forever). Let A be the chosen ample set at s, a proper dependence-
//   closed, invisible, enabled subset, and let w = m1..mn be a full-graph
//   path from s to a goal state.
//   (1) If some mi ∈ A, every mj before it is outside A and therefore
//       independent of mi, so mi commutes to the front: s -mi-> s' still
//       reaches the goal, mi's transitions from s are expanded, and the
//       hypothesis applies to s'.
//   (2) If no mi ∈ A, pick any expanded transition s -a-> s' with a ∈ A:
//       independence keeps w enabled from s' and a's invisibility keeps
//       the final state a goal state, so the hypothesis applies to s'.
//   Deferred messages are charged to SearchStats::por_pruned.
//
// The footprints are deliberately coarse where precision would endanger
// determinism-sensitive fixtures and buy little on real workloads: fd-sets
// are one resource per *process* (two opens by the same process never
// commute here), and any message whose rule consults process credentials
// conflicts with every set*id by that process — which renders the
// reduction inert on the paper's single-process attack scenarios (their
// set*id messages couple everything; the state-space win there comes from
// symmetry reduction instead) and lets it bite on multi-process queries,
// where disjoint processes' messages genuinely commute.
#pragma once

#include <cstdint>
#include <vector>

#include "rosa/canon.h"
#include "rosa/rules.h"
#include "rosa/search.h"

namespace pa::rosa {

/// Static per-query dependence matrix + goal-visibility mask.
/// Default-constructed = POR disabled.
class IndependenceTable {
 public:
  /// Analyze `query`. Disabled when the goal's touch set is unknown (every
  /// message must then be treated as visible), under CfiOrdered attackers
  /// (program order makes interleavings non-commutable by construction),
  /// or with no messages.
  static IndependenceTable build(const Query& query);

  bool enabled() const { return enabled_; }
  std::size_t message_count() const { return dep_.size(); }
  /// Bit j set: message i and message j may not commute (always includes
  /// i itself; symmetric).
  std::uint64_t dep_mask(std::size_t i) const { return dep_[i]; }
  /// Bit i set: message i can change the goal predicate's value.
  std::uint64_t visible_mask() const { return visible_; }
  /// Bit i set: message i's process is absent — it never fires and never
  /// seeds an ample set. Exposed so fused-search grouping can compare two
  /// queries' tables field-for-field.
  std::uint64_t dead_mask() const { return dead_; }
  bool independent(std::size_t i, std::size_t j) const {
    return !(dep_[i] & (std::uint64_t{1} << j));
  }

  /// Candidate ample sets for a state whose unconsumed-message mask is
  /// `unconsumed`: dependence closures of each invisible unconsumed seed
  /// that stay invisible and are proper subsets, deduplicated and ordered
  /// by (popcount, mask) — deterministic and a pure function of the
  /// arguments, so serial and layered engines choose identically. The
  /// engine commits to the first candidate that yields a transition and
  /// falls back to full expansion when none does.
  void candidates(std::uint64_t unconsumed,
                  std::vector<std::uint64_t>& out) const;

 private:
  bool enabled_ = false;
  std::uint64_t visible_ = 0;
  std::uint64_t dead_ = 0;  // proc absent: never fires, never seeds an ample
  std::vector<std::uint64_t> dep_;  // [message] -> dependent-message mask
};

/// Everything one search needs about both reductions, computed once.
struct ReductionPlan {
  SymmetryInfo symmetry;
  IndependenceTable table;

  bool sym() const { return symmetry.enabled(); }
  bool por() const { return table.enabled(); }
  bool any() const { return sym() || por(); }
};

/// Build the plan for a search: empty (both reductions off) unless
/// limits.reduction, with each reduction further gated by its own
/// eligibility rules (compute_symmetry, IndependenceTable::build).
ReductionPlan make_reduction_plan(const Query& query,
                                  const SearchLimits& limits);

/// One buffered successor: the message index that produced it plus the
/// transition (next state already has msgs_remaining cleared).
struct ExpandedTransition {
  unsigned msg = 0;
  Transition tr;
};

/// Expand one state: apply the chosen ample set's messages (or, without an
/// enabled `table`, every unconsumed message allowed by `fire_mask`) in
/// ascending index order, appending the successors to `out` in exactly the
/// order the unreduced serial loop enumerates them. Returns the number of
/// unconsumed messages deferred by the ample choice (the state's por_pruned
/// charge; 0 on full expansion). `scratch` is reusable transition storage.
/// The CfiOrdered program-order gate is applied here in both modes, always
/// against the FULL message list: masked-out later messages are never
/// consumed, so the gate degenerates to program order over the mask's
/// subsequence — the same semantics a tailored per-attack message list had.
/// `fire_mask` is the query's msg_mask for standalone searches and the
/// union of the live members' masks for the fused engines; the POR path
/// ignores it (IndependenceTable::build refuses proper masks, and fused
/// groups only enable POR when every member's mask is full).
std::size_t expand_state(const State& cur, const Query& query,
                         const AccessChecker& checker,
                         const IndependenceTable* table,
                         std::uint64_t full_msg_mask, std::uint64_t fire_mask,
                         std::vector<ExpandedTransition>& out,
                         std::vector<Transition>& scratch);

}  // namespace pa::rosa
