// The evaluation programs (paper Table II) as PrivIR models, plus the
// Ubuntu-like SimOS world they run in.
//
// Each model reproduces its real counterpart's *privilege lifecycle*: the
// same syscalls, the same priv_raise/priv_lower sites (the Hu et al.
// modifications), the same credential transitions, with work() padding sized
// so the dynamic-instruction proportions of each privilege epoch mirror the
// paper's Table III / Table V. See DESIGN.md for the substitution argument.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "ir/module.h"
#include "os/kernel.h"
#include "support/diagnostics.h"

namespace pa::programs {

// Well-known ids in the simulated world (Ubuntu-16.04-like).
inline constexpr caps::Uid kUser = 1000;       // invoking user
inline constexpr caps::Uid kOtherUser = 1001;  // su/scp target user
inline constexpr caps::Uid kEtcUser = 998;     // the refactor's special user
inline constexpr caps::Gid kUserGid = 1000;
inline constexpr caps::Gid kOtherGid = 1001;
inline constexpr caps::Gid kShadowGid = 42;    // group "shadow"
inline constexpr caps::Gid kKmemGid = 15;      // group "kmem" (/dev/mem)
inline constexpr caps::Gid kUtmpGid = 43;      // group "utmp" (sulog)
inline constexpr caps::Uid kServerUid = 109;   // critical-daemon user

/// A runnable evaluation program: the module (pre-AutoPriv), its launch
/// configuration, and the workload arguments described in §VII-B.
struct ProgramSpec {
  std::string name;
  ir::Module module;
  caps::CapSet launch_permitted;
  caps::Credentials launch_creds;
  std::vector<ir::RtValue> args;
  std::string description;  // Table II description

  /// Names of every syscall the module can execute (the attack model's
  /// constraint on ROSA messages). Computed from the module.
  std::vector<std::string> syscalls_used() const;

  /// Extra uid/gid values this program's attack scenarios should allow as
  /// wildcard candidates (the refactored programs' special users).
  std::vector<int> scenario_extra_users;
  std::vector<int> scenario_extra_groups;

  /// True for the §VII-D variants, which need the world where the `etc`
  /// user owns /etc and the shadow files.
  bool refactored_world = false;

  /// Lint findings this program acknowledges as intentional (the
  /// `; !lint-allow: <code>` directive). PrivLint reports matching findings
  /// as suppressed rather than failing on them.
  std::set<support::DiagCode> lint_allow;
};

/// Build the standard world: users 1000/1001, /etc/shadow (root:shadow
/// 0640), /etc/passwd, /dev/mem (root:kmem 0640), /var/log/sulog, a web
/// root, and sshd host keys.
os::Kernel make_standard_world();

/// The refactored world (§VII-D): /etc and the shadow files are owned by the
/// special `etc` user (998) instead of root.
os::Kernel make_refactored_world();

/// Spawn `spec`'s process in `kernel` (launched with the correct permitted
/// set rather than as setuid-root, as §VII-B describes).
os::Pid spawn_program(os::Kernel& kernel, const ProgramSpec& spec);

// The five evaluation programs (Table II).
ProgramSpec make_passwd();
ProgramSpec make_su();
ProgramSpec make_ping();
ProgramSpec make_thttpd();
ProgramSpec make_sshd();

// The security-refactored variants (§VII-D, Table V).
ProgramSpec make_passwd_refactored();
ProgramSpec make_su_refactored();

/// Extension (this reproduction, not the paper): sshd restructured along the
/// paper's §VII-E lessons + a privilege-separation-style design, fixing the
/// two problems §VII-C identifies (privileged signal handlers and the
/// indirect call in the connection loop).
ProgramSpec make_sshd_refactored();

/// All five baseline programs, in Table II/III order.
std::vector<ProgramSpec> all_baseline_programs();

}  // namespace pa::programs
