#include "caps/capability.h"

#include <array>

#include "support/error.h"
#include "support/str.h"

namespace pa::caps {
namespace {

struct Names {
  std::string_view camel;
  std::string_view kernel;
};

constexpr std::array<Names, kNumCapabilities> kNames = {{
    {"CapChown", "CAP_CHOWN"},
    {"CapDacOverride", "CAP_DAC_OVERRIDE"},
    {"CapDacReadSearch", "CAP_DAC_READ_SEARCH"},
    {"CapFowner", "CAP_FOWNER"},
    {"CapFsetid", "CAP_FSETID"},
    {"CapKill", "CAP_KILL"},
    {"CapSetgid", "CAP_SETGID"},
    {"CapSetuid", "CAP_SETUID"},
    {"CapSetpcap", "CAP_SETPCAP"},
    {"CapLinuxImmutable", "CAP_LINUX_IMMUTABLE"},
    {"CapNetBindService", "CAP_NET_BIND_SERVICE"},
    {"CapNetBroadcast", "CAP_NET_BROADCAST"},
    {"CapNetAdmin", "CAP_NET_ADMIN"},
    {"CapNetRaw", "CAP_NET_RAW"},
    {"CapIpcLock", "CAP_IPC_LOCK"},
    {"CapIpcOwner", "CAP_IPC_OWNER"},
    {"CapSysModule", "CAP_SYS_MODULE"},
    {"CapSysRawio", "CAP_SYS_RAWIO"},
    {"CapSysChroot", "CAP_SYS_CHROOT"},
    {"CapSysPtrace", "CAP_SYS_PTRACE"},
    {"CapSysPacct", "CAP_SYS_PACCT"},
    {"CapSysAdmin", "CAP_SYS_ADMIN"},
    {"CapSysBoot", "CAP_SYS_BOOT"},
    {"CapSysNice", "CAP_SYS_NICE"},
    {"CapSysResource", "CAP_SYS_RESOURCE"},
    {"CapSysTime", "CAP_SYS_TIME"},
    {"CapSysTtyConfig", "CAP_SYS_TTY_CONFIG"},
    {"CapMknod", "CAP_MKNOD"},
    {"CapLease", "CAP_LEASE"},
    {"CapAuditWrite", "CAP_AUDIT_WRITE"},
    {"CapAuditControl", "CAP_AUDIT_CONTROL"},
    {"CapSetfcap", "CAP_SETFCAP"},
    {"CapMacOverride", "CAP_MAC_OVERRIDE"},
    {"CapMacAdmin", "CAP_MAC_ADMIN"},
    {"CapSyslog", "CAP_SYSLOG"},
    {"CapWakeAlarm", "CAP_WAKE_ALARM"},
    {"CapBlockSuspend", "CAP_BLOCK_SUSPEND"},
    {"CapAuditRead", "CAP_AUDIT_READ"},
}};

}  // namespace

std::string_view name(Capability c) {
  int i = static_cast<int>(c);
  PA_CHECK(i >= 0 && i < kNumCapabilities, "capability out of range");
  return kNames[static_cast<std::size_t>(i)].camel;
}

std::string_view kernel_name(Capability c) {
  int i = static_cast<int>(c);
  PA_CHECK(i >= 0 && i < kNumCapabilities, "capability out of range");
  return kNames[static_cast<std::size_t>(i)].kernel;
}

std::optional<Capability> parse_capability(std::string_view s) {
  for (int i = 0; i < kNumCapabilities; ++i) {
    const auto& n = kNames[static_cast<std::size_t>(i)];
    if (s == n.camel || s == n.kernel) return static_cast<Capability>(i);
  }
  return std::nullopt;
}

CapSet CapSet::full() {
  std::uint64_t bits = (std::uint64_t{1} << kNumCapabilities) - 1;
  return CapSet(bits);
}

std::optional<CapSet> CapSet::parse(std::string_view s) {
  s = str::trim(s);
  if (s.empty() || s == "empty" || s == "(empty)") return CapSet{};
  CapSet out;
  for (const std::string& field : str::split(s, ',')) {
    auto cap = parse_capability(str::trim(field));
    if (!cap) return std::nullopt;
    out = out.with(*cap);
  }
  return out;
}

int CapSet::size() const {
  int n = 0;
  for (std::uint64_t b = bits_; b; b &= b - 1) ++n;
  return n;
}

std::vector<Capability> CapSet::members() const {
  std::vector<Capability> out;
  for (int i = 0; i < kNumCapabilities; ++i) {
    auto c = static_cast<Capability>(i);
    if (contains(c)) out.push_back(c);
  }
  return out;
}

std::string CapSet::to_string() const {
  if (empty()) return "(empty)";
  std::vector<std::string> names;
  for (Capability c : members()) names.emplace_back(name(c));
  return str::join(names, ",");
}

}  // namespace pa::caps
