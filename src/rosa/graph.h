// Full state-graph exploration with Graphviz export — tooling for
// understanding *why* ROSA reaches a verdict. Unlike rosa/search.h (which
// stops at the first witness and skips duplicate edges), this walks the
// entire bounded space and records every transition.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rosa/search.h"

namespace pa::rosa {

struct StateGraph {
  struct Edge {
    std::size_t from = 0;
    std::size_t to = 0;
    Action action;
  };

  /// One entry per distinct state; label summarizes the process state.
  std::vector<std::string> node_labels;
  /// Parallel to node_labels: does the state satisfy the query's goal?
  std::vector<bool> node_is_goal;
  std::vector<Edge> edges;
  bool truncated = false;  // hit the node budget before exhausting

  std::size_t node_count() const { return node_labels.size(); }
  bool any_goal() const;

  /// Graphviz rendering: goal states double-circled, edges labelled with
  /// the instantiated syscall.
  std::string to_dot(const std::string& graph_name = "rosa") const;
};

/// Explore the query's reachable space (up to `max_states` distinct
/// states), recording every transition including those into already-known
/// states.
StateGraph explore_graph(const Query& query, std::size_t max_states = 10000);

}  // namespace pa::rosa
