# Empty compiler generated dependencies file for access_consistency_test.
# This may be replaced when dependencies are built.
