#include "os/kernel.h"

#include "support/error.h"
#include "support/str.h"

namespace pa::os {

Pid Kernel::spawn(std::string name, caps::Credentials creds,
                  caps::CapSet permitted) {
  Pid pid = next_pid_++;
  Process p;
  p.pid = pid;
  p.name = std::move(name);
  p.creds = std::move(creds);
  p.privs = caps::PrivState::launched_with(permitted);
  procs_.emplace(pid, std::move(p));
  return pid;
}

Process& Kernel::process(Pid pid) {
  auto it = procs_.find(pid);
  PA_CHECK(it != procs_.end(), str::cat("no process ", pid));
  return it->second;
}

const Process& Kernel::process(Pid pid) const {
  auto it = procs_.find(pid);
  PA_CHECK(it != procs_.end(), str::cat("no process ", pid));
  return it->second;
}

std::optional<Pid> Kernel::find_process(std::string_view name) const {
  for (const auto& [pid, p] : procs_)
    if (p.name == name) return pid;
  return std::nullopt;
}

Actor Kernel::actor_for(Pid pid) const {
  const Process& p = process(pid);
  return Actor{p.creds, p.privs.effective()};
}

OpenFile* Kernel::open_file(Pid pid, Fd fd) {
  Process& p = process(pid);
  auto it = p.fds.find(fd);
  return it == p.fds.end() ? nullptr : &it->second;
}

SysResult Kernel::priv_raise(Pid pid, caps::CapSet caps) {
  count("priv_raise");
  return process(pid).privs.raise(caps) ? SysResult(0) : Errno::Eperm;
}

SysResult Kernel::priv_lower(Pid pid, caps::CapSet caps) {
  count("priv_lower");
  process(pid).privs.lower(caps);
  return 0;
}

SysResult Kernel::priv_remove(Pid pid, caps::CapSet caps) {
  count("priv_remove");
  process(pid).privs.remove(caps);
  return 0;
}

SysResult Kernel::sys_prctl(Pid pid, PrctlOp op) {
  count("prctl");
  Process& p = process(pid);
  switch (op) {
    case PrctlOp::SetSecurebitsStrict:
      p.privs.set_securebits(caps::SecureBits{
          .no_setuid_fixup = true, .noroot = true, .keep_caps = false});
      return 0;
  }
  return Errno::Einval;
}

SysResult Kernel::sys_exit(Pid pid, int code) {
  count("exit");
  Process& p = process(pid);
  p.state = ProcState::Zombie;
  p.exit_code = code;
  return 0;
}

void Kernel::install_filters(Pid pid, FilterStack stack) {
  process(pid);  // PA_CHECKs the pid
  if (stack.filters.empty()) {
    filters_.erase(pid);
    return;
  }
  filters_[pid] = FilterState{std::move(stack), 0};
}

void Kernel::set_filter_epoch(Pid pid, std::size_t index) {
  auto it = filters_.find(pid);
  if (it == filters_.end()) return;
  const std::size_t last = it->second.stack.filters.size() - 1;
  it->second.active = index < last ? index : last;
}

std::optional<std::int64_t> Kernel::filter_check(Pid pid,
                                                 const std::string& name) {
  auto it = filters_.find(pid);
  if (it == filters_.end()) return std::nullopt;
  FilterState& fs = it->second;
  const SyscallFilter& filter = fs.stack.filters[fs.active];
  if (filter.allowed.contains(name)) return std::nullopt;
  violations_.push_back(
      FilterViolation{pid, filter.epoch, name, fs.stack.action});
  count("filter_violation");
  if (fs.stack.action == FilterAction::Kill) {
    Process& p = process(pid);
    p.state = ProcState::Zombie;
    p.exit_code = 128 + 31;  // 128 + SIGSYS, what seccomp's kill looks like
  }
  return -static_cast<std::int64_t>(Errno::Eperm);
}

}  // namespace pa::os
