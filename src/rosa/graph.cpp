#include "rosa/graph.h"

#include <deque>
#include <sstream>
#include <unordered_map>

#include "rosa/rules.h"
#include "support/error.h"
#include "support/str.h"

namespace pa::rosa {
namespace {

std::string label_of(const State& st) {
  std::string out;
  for (const ProcObj& p : st.procs) {
    out += str::cat("p", p.id, " u", p.uid.effective, " g", p.gid.effective);
    if (!p.running) out += " dead";
    if (!p.rdfset.empty()) {
      out += " r{";
      for (int f : p.rdfset) out += str::cat(f, " ");
      out += "}";
    }
    if (!p.wrfset.empty()) {
      out += " w{";
      for (int f : p.wrfset) out += str::cat(f, " ");
      out += "}";
    }
    out += "\\n";
  }
  return out;
}

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"') out += "\\\"";
    else out += c;
  }
  return out;
}

}  // namespace

bool StateGraph::any_goal() const {
  for (bool g : node_is_goal)
    if (g) return true;
  return false;
}

std::string StateGraph::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  for (std::size_t i = 0; i < node_labels.size(); ++i) {
    os << "  n" << i << " [label=\"s" << i << "\\n"
       << dot_escape(node_labels[i]) << "\"";
    if (node_is_goal[i]) os << ", peripheries=2, style=bold";
    if (i == 0) os << ", style=filled, fillcolor=lightgray";
    os << "];\n";
  }
  for (const Edge& e : edges)
    os << "  n" << e.from << " -> n" << e.to << " [label=\""
       << dot_escape(e.action.to_string()) << "\", fontsize=8];\n";
  if (truncated)
    os << "  trunc [label=\"(truncated)\", shape=plaintext];\n";
  os << "}\n";
  return os.str();
}

StateGraph explore_graph(const Query& query, std::size_t max_states) {
  PA_CHECK(query.messages.size() <= 64,
           "ROSA tracks at most 64 one-shot messages");
  StateGraph graph;

  State init = query.initial;
  init.normalize();
  init.set_msgs_remaining(
      query.messages.empty()
          ? 0
          : (query.messages.size() == 64
                 ? ~std::uint64_t{0}
                 : (std::uint64_t{1} << query.messages.size()) - 1));

  std::vector<State> states{init};
  std::unordered_map<std::string, std::size_t> seen{{init.canonical(), 0}};
  graph.node_labels.push_back(label_of(init));
  graph.node_is_goal.push_back(query.goal ? query.goal(init) : false);

  const AccessChecker& ck = query.checker ? *query.checker : linux_checker();
  std::deque<std::size_t> frontier{0};
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    const State cur_state = states[cur];

    for (std::size_t mi = 0; mi < query.messages.size(); ++mi) {
      const std::uint64_t bit = std::uint64_t{1} << mi;
      if (!(cur_state.msgs_remaining() & bit)) continue;
      // Mirror search(): CFI-ordered attackers consume messages in program
      // order only.
      if (query.attacker == AttackerModel::CfiOrdered) {
        const std::uint64_t later = ~((bit << 1) - 1);
        const std::uint64_t in_range =
            later & (query.messages.size() == 64
                         ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << query.messages.size()) - 1);
        if ((cur_state.msgs_remaining() & in_range) != in_range) continue;
      }
      for (Transition& tr :
           apply_message(cur_state, query.messages[mi], query.attacker, ck)) {
        tr.next.set_msgs_remaining(cur_state.msgs_remaining() & ~bit);
        std::string key = tr.next.canonical();
        auto [it, inserted] = seen.emplace(std::move(key), states.size());
        if (inserted) {
          if (states.size() >= max_states) {
            graph.truncated = true;
            seen.erase(it);
            continue;
          }
          states.push_back(tr.next);
          graph.node_labels.push_back(label_of(tr.next));
          graph.node_is_goal.push_back(query.goal ? query.goal(tr.next)
                                                  : false);
          frontier.push_back(it->second);
        }
        graph.edges.push_back(
            StateGraph::Edge{cur, it->second, std::move(tr.action)});
      }
    }
  }
  return graph;
}

}  // namespace pa::rosa
