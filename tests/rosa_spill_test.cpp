// Tests for the disk-spillable frontier (rosa/frontier.h): canonical-text
// round-tripping, the chunked SpillStore/SpillReader mechanics (atomic
// publish, multi-chunk reads), corruption robustness (truncated, tampered,
// stale-version chunks raise structured StageErrors instead of wrong
// states), temp-directory cleanup on every exit path, and end-to-end
// equality of spill-forced searches — including threaded ones — against
// unconstrained in-memory runs.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rosa/frontier.h"
#include "rosa/query.h"
#include "rosa_test_util.h"
#include "support/diagnostics.h"
#include "support/faultpoint.h"

namespace pa::rosa {
namespace {

namespace fp = support::faultpoint;
namespace fs = std::filesystem;

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::disarm_all();
    // Suffix with the pid: ctest runs each discovered case as its own
    // process, and concurrently-scheduled cases must not clobber each
    // other's directory.
    root_ = ::testing::TempDir() + "/rosa_spill_test_root_" +
            std::to_string(::getpid());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    fp::disarm_all();
    fs::remove_all(root_);
  }

  /// Per-search subdirectories left under root_ (must be empty after every
  /// store is destroyed).
  std::vector<std::string> leftover_dirs() {
    std::vector<std::string> out;
    for (const fs::directory_entry& e : fs::directory_iterator(root_))
      out.push_back(e.path().filename().string());
    return out;
  }

  std::string root_;
};

/// A state exercising every object kind and every canonical field: a live
/// and a zombie process with supplementary groups and open fd sets, a
/// setuid file, a directory with an inode, a bound socket, and a message
/// mask with bit 63 set (which canonical() prints as a negative number).
State rich_state() {
  State st;
  ProcObj p1;
  p1.id = 1;
  p1.uid = {1000, 0, 1000};
  p1.gid = {100, 100, 0};
  p1.supplementary = {3, 7};
  p1.rdfset.insert(4);
  p1.rdfset.insert(5);
  p1.wrfset.insert(4);
  st.procs.push_back(p1);
  ProcObj p2;
  p2.id = 2;
  p2.running = false;  // zombie
  st.procs.push_back(p2);
  st.files.push_back(FileObj{4, {0, 0, os::Mode(04755)}});
  st.dirs.push_back(DirObj{5, {0, 0, os::Mode(0755)}, 17});
  st.socks.push_back(SockObj{6, 1, 8080});
  st.set_name(4, "passwd");
  st.set_name(5, "etc");
  st.set_users({0, 1000});
  st.set_groups({0, 100});
  st.normalize();
  st.set_msgs_remaining(0x8000000000000001ull);
  return st;
}

// --- parse_canonical --------------------------------------------------------

TEST_F(SpillTest, ParseCanonicalRoundTripsARichState) {
  const State st = rich_state();
  std::optional<State> back = parse_canonical(st.canonical(), st.world());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->canonical(), st.canonical());
  EXPECT_EQ(back->full_hash(), st.full_hash());
  EXPECT_EQ(back->msgs_remaining(), st.msgs_remaining());
  // The skeleton is adopted, not rebuilt: same shared object.
  EXPECT_EQ(back->world().get(), st.world().get());
  EXPECT_EQ(back->name_of(4), "passwd");
}

TEST_F(SpillTest, ParseCanonicalRejectsMalformedInput) {
  const State st = rich_state();
  const std::string good = st.canonical();
  ASSERT_TRUE(parse_canonical(good, st.world()).has_value());

  for (const std::string& bad : {
           std::string(""),                       // empty
           std::string("Z0,"),                    // wrong leading tag
           std::string("M5"),                     // missing comma
           std::string("Mx,"),                    // not a number
           std::string("M99999999999999999999,"), // overflow
           std::string("M0,P1,"),                 // truncated proc
           std::string("M0,F1,0,0,99999,"),       // mode out of range
           good + "garbage",                      // trailing junk
           good.substr(0, good.size() / 2),       // truncated mid-object
       }) {
    EXPECT_FALSE(parse_canonical(bad, st.world()).has_value())
        << "accepted: " << bad;
  }

  // Corrupting the run flag of a proc must not parse.
  std::string flipped = good;
  const std::size_t rpos = flipped.find('r');
  ASSERT_NE(rpos, std::string::npos);
  flipped[rpos] = 'q';
  EXPECT_FALSE(parse_canonical(flipped, st.world()).has_value());
}

// --- SpillStore / SpillReader mechanics -------------------------------------

TEST_F(SpillTest, StoreWritesChunksAtomicallyAndReaderLoadsAcrossChunks) {
  std::vector<State> states;
  for (int i = 0; i < 3; ++i) {
    State st = rich_state();
    st.set_msgs_remaining(static_cast<std::uint64_t>(i));
    states.push_back(std::move(st));
  }

  SpillStore store(root_);
  EXPECT_NE(store.dir().find("rosa-spill-"), std::string::npos);
  std::vector<SpillStore::Ref> refs;
  for (const State& st : states) refs.push_back(store.append(st, st.hash()));
  // Nothing is visible until flush publishes the chunk.
  EXPECT_EQ(store.chunks_written(), 0u);
  EXPECT_FALSE(fs::exists(store.chunk_path(0)));
  store.flush();
  ASSERT_EQ(store.chunks_written(), 1u);
  ASSERT_TRUE(fs::exists(store.chunk_path(0)));
  EXPECT_EQ(store.spilled_states(), 3u);
  EXPECT_GT(store.spill_bytes(), 0u);

  // A second round lands in a second chunk file.
  SpillStore::Ref late = store.append(states[0], states[0].hash());
  store.flush();
  ASSERT_EQ(store.chunks_written(), 2u);
  EXPECT_EQ(late.chunk, 1u);

  // No temp files linger after publishing.
  for (const fs::directory_entry& e : fs::directory_iterator(store.dir()))
    EXPECT_EQ(e.path().extension(), ".spill") << e.path();

  // The chunk opens with the versioned header line.
  std::ifstream in(store.chunk_path(0));
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, spill_header_line());

  // Point reads across chunks, in an order that forces chunk switching.
  SpillReader reader(store);
  EXPECT_EQ(reader.load(refs[2], states[2].world()).canonical(),
            states[2].canonical());
  EXPECT_EQ(reader.load(late, states[0].world()).canonical(),
            states[0].canonical());
  EXPECT_EQ(reader.load(refs[0], states[0].world()).canonical(),
            states[0].canonical());
  EXPECT_EQ(reader.load(refs[1], states[1].world()).canonical(),
            states[1].canonical());
}

TEST_F(SpillTest, ReaderRejectsCorruptTamperedStaleAndMissingChunks) {
  const State st = rich_state();
  SpillStore store(root_);
  const SpillStore::Ref ref = store.append(st, st.hash());
  store.flush();
  const std::string path = store.chunk_path(0);

  auto read_file = [&] {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  auto write_file = [&](const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  };
  const std::string pristine = read_file();

  auto expect_load_fails = [&](support::DiagCode code) {
    SpillReader reader(store);
    try {
      reader.load(ref, st.world());
      FAIL() << "load succeeded on a damaged chunk";
    } catch (const support::StageError& e) {
      EXPECT_EQ(e.diagnostic().stage, support::Stage::Rosa);
      EXPECT_EQ(e.diagnostic().code, code);
    }
  };

  // Stale format version.
  write_file(std::string("privanalyzer-rosa-spill v0 model=stale\n") +
             pristine.substr(pristine.find('\n') + 1));
  expect_load_fails(support::DiagCode::BadFieldValue);

  // Truncated mid-frame.
  write_file(pristine.substr(0, pristine.size() - 10));
  expect_load_fails(support::DiagCode::BadFieldValue);

  // Same-length payload tamper: the stored digest no longer matches.
  std::string tampered = pristine;
  const std::size_t mpos = tampered.rfind("M");
  ASSERT_NE(mpos, std::string::npos);
  tampered[mpos + 1] = tampered[mpos + 1] == '9' ? '8' : '9';
  write_file(tampered);
  expect_load_fails(support::DiagCode::BadFieldValue);

  // Intact again: loads fine (the reader holds no poisoned cache).
  write_file(pristine);
  EXPECT_EQ(SpillReader(store).load(ref, st.world()).canonical(),
            st.canonical());

  // Missing chunk file.
  fs::remove(path);
  expect_load_fails(support::DiagCode::FileNotFound);
}

TEST_F(SpillTest, StoreRemovesItsDirectoryOnEveryExitPath) {
  // Normal lifetime.
  std::string dir;
  {
    SpillStore store(root_);
    dir = store.dir();
    store.append(rich_state(), rich_state().hash());
    store.flush();
    ASSERT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));

  // Injected I/O fault at flush time: the directory still disappears with
  // the store (hit 1 = the constructor's eager directory creation).
  {
    fp::arm("rosa.spill_io", 2);
    SpillStore store(root_);
    dir = store.dir();
    store.append(rich_state(), rich_state().hash());
    EXPECT_THROW(store.flush(), support::FaultInjected);
    ASSERT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));
  EXPECT_TRUE(leftover_dirs().empty());
}

// --- End-to-end spill-forced searches ---------------------------------------

TEST_F(SpillTest, SpilledSearchesMatchInMemoryRunsSerialAndThreaded) {
  // Unreachable goal: the full 256-state space is explored, so a small byte
  // budget forces spilling over many layers (one chunk per layer: a
  // multi-round spill).
  const Query q = rosa_test::unreachable_query(8);
  const SearchResult full = search(q, {});
  ASSERT_EQ(full.verdict, Verdict::Unreachable);

  for (unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("search_threads=" + std::to_string(workers));
    SearchLimits lim;
    lim.max_bytes = full.stats.peak_bytes / 8;
    ASSERT_GT(lim.max_bytes, 0u);
    lim.spill_dir = root_;
    lim.search_threads = workers;
    const SearchResult spilled = search(q, lim);
    EXPECT_EQ(spilled.verdict, full.verdict);
    EXPECT_EQ(spilled.stats.states, full.stats.states);
    EXPECT_EQ(spilled.stats.transitions, full.stats.transitions);
    EXPECT_EQ(spilled.stats.dedup_hits, full.stats.dedup_hits);
    EXPECT_EQ(spilled.stats.peak_frontier, full.stats.peak_frontier);
    EXPECT_EQ(spilled.stats.state_bytes, full.stats.state_bytes);
    EXPECT_GT(spilled.stats.spilled_states, 0u);
    EXPECT_GT(spilled.stats.spill_bytes, 0u);
  }
  // Every per-search spill directory was cleaned up.
  EXPECT_TRUE(leftover_dirs().empty());
}

TEST_F(SpillTest, SpilledWitnessMatchesInMemoryWitness) {
  // A goal deep in the space — all 8 files open — so the witness crosses
  // every spilled layer.
  Query q = rosa_test::open_query(8, 0600, goal_proc_terminated(1));
  q.goal = [](const State& st) { return st.procs[0].rdfset.size() == 8; };
  const SearchResult full = search(q, {});
  ASSERT_EQ(full.verdict, Verdict::Reachable);
  ASSERT_EQ(full.witness.size(), 8u);

  SearchLimits lim;
  lim.max_bytes = full.stats.peak_bytes / 8;
  ASSERT_GT(lim.max_bytes, 0u);
  lim.spill_dir = root_;
  const SearchResult spilled = search(q, lim);
  ASSERT_EQ(spilled.verdict, Verdict::Reachable);
  EXPECT_GT(spilled.stats.spilled_states, 0u);
  ASSERT_EQ(spilled.witness.size(), full.witness.size());
  for (std::size_t i = 0; i < full.witness.size(); ++i)
    EXPECT_EQ(spilled.witness[i].to_string(), full.witness[i].to_string());
}

TEST_F(SpillTest, HashOverrideDoesNotPoisonSpilledDigests) {
  // Frames store the real digest even when dedup runs under a
  // hash_override, so loads verify against full_hash() and still pass.
  const Query q = rosa_test::unreachable_query(6);
  SearchLimits mem;
  mem.hash_override = [](const State&) { return std::uint64_t{7}; };
  const SearchResult full = search(q, mem);
  ASSERT_EQ(full.verdict, Verdict::Unreachable);

  SearchLimits lim = mem;
  lim.max_bytes = full.stats.peak_bytes / 4;
  ASSERT_GT(lim.max_bytes, 0u);
  lim.spill_dir = root_;
  const SearchResult spilled = search(q, lim);
  EXPECT_EQ(spilled.verdict, full.verdict);
  EXPECT_EQ(spilled.stats.states, full.stats.states);
  EXPECT_EQ(spilled.stats.hash_collisions, full.stats.hash_collisions);
  EXPECT_GT(spilled.stats.spilled_states, 0u);
}

TEST_F(SpillTest, CancelledSpillingSearchCleansUpItsDirectory) {
  const Query q = rosa_test::unreachable_query(8);
  std::atomic<bool> stop{true};
  SearchLimits lim;
  lim.max_bytes = 1;
  lim.spill_dir = root_;
  lim.cancel = &stop;
  const SearchResult r = search(q, lim);
  EXPECT_EQ(r.verdict, Verdict::ResourceLimit);
  EXPECT_TRUE(leftover_dirs().empty());
}

TEST_F(SpillTest, SpillIoFaultDuringSearchSurfacesAndCleansUp) {
  const Query q = rosa_test::unreachable_query(8);
  SearchLimits lim;
  lim.max_bytes = 1;
  lim.spill_dir = root_;
  fp::arm("rosa.spill_io", 3);  // survive ctor + first flush, then fail
  EXPECT_THROW(search(q, lim), support::FaultInjected);
  EXPECT_TRUE(leftover_dirs().empty());
}

}  // namespace
}  // namespace pa::rosa
