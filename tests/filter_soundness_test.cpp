// Soundness gate for EpochFilter enforcement (src/filters + os::Kernel
// filter stack): under conservative per-epoch syscall allowlists, every
// legitimate execution must complete bit-identically to a filters-off run —
// same epoch table, same exit code, same baseline verdict matrix, same
// witnesses, same vulnerable fractions — at --search-threads 1 and 4, over
// all Table-II programs, the shipped examples, the lint fixtures, and a
// small randomized corpus. Also pins the structural filter invariants:
// refined ⊆ conservative per epoch, allowlists ⊆ the program's syscall
// surface, at least one strictly reduced epoch on Table II, and the
// satellite regression that a syscall reachable ONLY through a registered
// signal handler stays in every epoch's filter (literal and
// register-passed handler operands).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "ir/builder.h"
#include "privanalyzer/loader.h"
#include "privanalyzer/pipeline.h"
#include "programs/world.h"

namespace pa::privanalyzer {
namespace {

using attacks::EpochVerdicts;

PipelineOptions make_options(FilterMode mode, unsigned search_threads,
                             bool run_rosa) {
  PipelineOptions opts;
  opts.rosa_limits.max_states = 150'000;
  opts.rosa_limits.search_threads = search_threads;
  opts.rosa_threads = 1;
  opts.run_rosa = run_rosa;
  opts.filters = mode;
  return opts;
}

/// The soundness contract: everything the filters-off run produced must be
/// reproduced exactly by the filters-on run, and enforcement must never
/// have fired.
void expect_baseline_identical(const ProgramAnalysis& off,
                               const ProgramAnalysis& on) {
  EXPECT_EQ(off.program, on.program);
  EXPECT_EQ(off.status, on.status);
  EXPECT_EQ(off.exit_code, on.exit_code);
  EXPECT_EQ(off.chrono.to_string(), on.chrono.to_string());
  EXPECT_EQ(on.filter_violations, 0);
  ASSERT_EQ(off.verdicts.size(), on.verdicts.size());
  for (std::size_t e = 0; e < off.verdicts.size(); ++e) {
    const EpochVerdicts& a = off.verdicts[e];
    const EpochVerdicts& b = on.verdicts[e];
    EXPECT_EQ(a.epoch_name, b.epoch_name);
    for (std::size_t k = 0; k < a.verdicts.size(); ++k) {
      SCOPED_TRACE(off.program + "/" + a.epoch_name + "/attack" +
                   std::to_string(k + 1));
      EXPECT_EQ(a.verdicts[k], b.verdicts[k]);
      ASSERT_EQ(a.results[k].witness.size(), b.results[k].witness.size());
      for (std::size_t w = 0; w < a.results[k].witness.size(); ++w)
        EXPECT_EQ(a.results[k].witness[w].to_string(),
                  b.results[k].witness[w].to_string());
    }
  }
  for (std::size_t k = 0; k < attacks::modeled_attacks().size(); ++k)
    EXPECT_EQ(off.vulnerable_fraction(k), on.vulnerable_fraction(k))
        << off.program << " attack " << k + 1;
}

/// Structural invariants of a synthesized report: one filter per epoch,
/// refined ⊆ conservative, and both within the program's syscall surface.
void expect_filter_invariants(const ProgramAnalysis& a) {
  ASSERT_FALSE(a.filter_report.empty()) << a.program;
  ASSERT_EQ(a.filter_report.epochs.size(), a.chrono.rows.size());
  const std::set<std::string>& surface = a.filter_report.program_syscalls;
  for (const filters::EpochFilter& e : a.filter_report.epochs) {
    SCOPED_TRACE(a.program + "/" + e.epoch);
    EXPECT_TRUE(std::includes(e.conservative.begin(), e.conservative.end(),
                              e.refined.begin(), e.refined.end()))
        << "refined set is not a subset of the conservative set";
    EXPECT_TRUE(std::includes(surface.begin(), surface.end(),
                              e.conservative.begin(), e.conservative.end()))
        << "conservative set escapes the program's syscall surface";
  }
}

// ---------------------------------------------------------------------------
// Table II: the full differential at both search-thread counts, report and
// enforce, plus the acceptance bar that filtering strictly reduces at least
// one epoch's surface somewhere in the batch.

class TableTwoSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(TableTwoSoundness, EnforcedFiltersAreANoOpForLegitimateRuns) {
  const unsigned search_threads = GetParam();
  bool any_reduced = false;
  for (const programs::ProgramSpec& spec : programs::all_baseline_programs()) {
    SCOPED_TRACE(spec.name);
    ProgramAnalysis off = analyze_program(
        spec, make_options(FilterMode::Off, search_threads, true));
    ProgramAnalysis enforced = analyze_program(
        spec, make_options(FilterMode::Enforce, search_threads, true));
    expect_baseline_identical(off, enforced);
    expect_filter_invariants(enforced);
    if (enforced.filter_report.reduced_epochs() > 0) any_reduced = true;

    // The filtered matrix only ever shrinks reachability: an attacker with
    // a subset of the syscalls cannot reach a goal the full attacker
    // provably could not (Timeout cells are incomparable and skipped).
    ASSERT_EQ(enforced.filtered_verdicts.size(), enforced.verdicts.size());
    for (std::size_t e = 0; e < enforced.verdicts.size(); ++e)
      for (std::size_t k = 0; k < enforced.verdicts[e].verdicts.size(); ++k) {
        const attacks::CellVerdict base = enforced.verdicts[e].verdicts[k];
        const attacks::CellVerdict filt =
            enforced.filtered_verdicts[e].verdicts[k];
        if (base == attacks::CellVerdict::Timeout ||
            filt == attacks::CellVerdict::Timeout)
          continue;
        EXPECT_FALSE(base == attacks::CellVerdict::Safe &&
                     filt == attacks::CellVerdict::Vulnerable)
            << spec.name << "/" << enforced.verdicts[e].epoch_name
            << "/attack" << k + 1;
      }
  }
  EXPECT_TRUE(any_reduced)
      << "no Table-II epoch had a strictly reduced syscall surface";
}

INSTANTIATE_TEST_SUITE_P(SearchThreads, TableTwoSoundness,
                         ::testing::Values(1u, 4u));

TEST(FilterModeTest, ReportAndEnforceAgreeOnTheReport) {
  // Report mode must synthesize exactly the sets Enforce installs — the
  // enforced run is deterministic-identical to the measurement run.
  programs::ProgramSpec spec = programs::make_passwd();
  ProgramAnalysis report =
      analyze_program(spec, make_options(FilterMode::Report, 1, true));
  ProgramAnalysis enforce =
      analyze_program(spec, make_options(FilterMode::Enforce, 1, true));
  ASSERT_EQ(report.filter_report.epochs.size(),
            enforce.filter_report.epochs.size());
  for (std::size_t e = 0; e < report.filter_report.epochs.size(); ++e) {
    EXPECT_EQ(report.filter_report.epochs[e].conservative,
              enforce.filter_report.epochs[e].conservative);
    EXPECT_EQ(report.filter_report.epochs[e].refined,
              enforce.filter_report.epochs[e].refined);
  }
  EXPECT_EQ(filters::filters_to_json(report.filter_report),
            filters::filters_to_json(enforce.filter_report));
}

TEST(FilterModeTest, KillActionIsAlsoANoOpForLegitimateRuns) {
  // Kill semantics only differ when a filter actually denies a syscall;
  // sound conservative filters never do, so the run is still identical.
  programs::ProgramSpec spec = programs::make_sshd();
  PipelineOptions kill_opts = make_options(FilterMode::Enforce, 1, false);
  kill_opts.filter_action = os::FilterAction::Kill;
  ProgramAnalysis off =
      analyze_program(spec, make_options(FilterMode::Off, 1, false));
  ProgramAnalysis killed = analyze_program(spec, kill_opts);
  EXPECT_EQ(off.chrono.to_string(), killed.chrono.to_string());
  EXPECT_EQ(off.exit_code, killed.exit_code);
  EXPECT_EQ(killed.filter_violations, 0);
}

// ---------------------------------------------------------------------------
// Shipped examples + lint fixtures: ChronoPriv-only differential (the lint
// fixtures include programs that fail at runtime — both modes must fail
// identically).

TEST(ExampleSoundnessTest, ExamplesAndFixturesRunIdenticallyUnderFilters) {
  for (const char* rel :
       {"/examples/programs/tinyd.pir", "/examples/programs/filesrv.pc",
        "/examples/programs/su.pc", "/examples/lint/redundant_remove.pir",
        "/examples/lint/never_raised.pir", "/examples/lint/raise_no_lower.pir",
        "/examples/lint/unreachable.pir", "/examples/lint/empty_targets.pir",
        "/examples/lint/unused_epoch.pir",
        "/examples/lint/overbroad_syscalls.pir"}) {
    SCOPED_TRACE(rel);
    const std::string path = std::string(PA_SOURCE_DIR) + rel;
    ProgramAnalysis off =
        try_analyze_file(path, make_options(FilterMode::Off, 1, false));
    ProgramAnalysis enforced =
        try_analyze_file(path, make_options(FilterMode::Enforce, 1, false));
    EXPECT_EQ(off.status, enforced.status);
    EXPECT_EQ(off.exit_code, enforced.exit_code);
    EXPECT_EQ(off.chrono.to_string(), enforced.chrono.to_string());
    EXPECT_EQ(enforced.filter_violations, 0);
    if (enforced.ok()) expect_filter_invariants(enforced);
  }
}

// ---------------------------------------------------------------------------
// Randomized corpus: small straight-line-ish modules over known syscalls;
// the differential must hold for shapes nobody hand-picked.

programs::ProgramSpec random_spec(unsigned seed) {
  std::mt19937 rng(seed);
  auto coin = [&] { return rng() % 2 == 0; };
  ir::Module m("fuzz" + std::to_string(seed));
  ir::IRBuilder b(m);
  using B = ir::IRBuilder;

  b.begin_function("helper", 0);
  if (coin()) b.syscall("getuid", {});
  if (coin()) {
    b.priv_raise({caps::Capability::DacReadSearch});
    b.syscall("open", {B::s("/etc/shadow"), B::i(1)});
    b.priv_lower({caps::Capability::DacReadSearch});
  }
  b.ret(B::i(0));
  b.end_function();

  b.begin_function("main", 0);
  int blocks = 1 + static_cast<int>(rng() % 3);
  for (int bi = 0; bi < blocks; ++bi) {
    if (coin()) b.syscall("open", {B::s("/f" + std::to_string(rng() % 3)),
                                   B::i(1)});
    if (coin()) b.call("helper", {});
    if (coin()) {
      b.priv_raise({caps::Capability::Setuid});
      if (coin()) b.syscall("geteuid", {});
      b.priv_lower({caps::Capability::Setuid});
    }
    std::string next = "blk" + std::to_string(bi);
    b.br(next);
    b.at(next);
  }
  b.exit(B::i(static_cast<int>(rng() % 3)));
  b.end_function();
  m.recompute_address_taken();

  programs::ProgramSpec spec;
  spec.name = m.name();
  spec.module = std::move(m);
  spec.launch_permitted = {caps::Capability::Setuid,
                           caps::Capability::DacReadSearch};
  spec.launch_creds = caps::Credentials::of_user(1000, 1000);
  return spec;
}

class FuzzSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSoundness, RandomProgramsRunIdenticallyUnderEnforcedFilters) {
  programs::ProgramSpec spec = random_spec(GetParam());
  ProgramAnalysis off =
      try_analyze_program(spec, make_options(FilterMode::Off, 1, false));
  ProgramAnalysis enforced =
      try_analyze_program(spec, make_options(FilterMode::Enforce, 1, false));
  EXPECT_EQ(off.status, enforced.status);
  EXPECT_EQ(off.exit_code, enforced.exit_code);
  EXPECT_EQ(off.chrono.to_string(), enforced.chrono.to_string());
  EXPECT_EQ(enforced.filter_violations, 0);
  if (enforced.ok()) expect_filter_invariants(enforced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSoundness, ::testing::Range(0u, 12u));

// ---------------------------------------------------------------------------
// Satellite regression: a syscall reachable ONLY through a registered
// signal handler must stay in every epoch's filter — for a handler passed
// as a literal @func operand and for one passed through a register.

void expect_handler_syscall_in_every_epoch(const std::string& text) {
  programs::ProgramSpec spec = load_program(text);
  ProgramAnalysis a =
      analyze_program(spec, make_options(FilterMode::Report, 1, false));
  ASSERT_FALSE(a.filter_report.empty());
  for (const filters::EpochFilter& e : a.filter_report.epochs) {
    SCOPED_TRACE(e.epoch);
    EXPECT_TRUE(e.conservative.count("kill"))
        << "handler-only syscall dropped from the conservative filter";
    EXPECT_TRUE(e.refined.count("kill"))
        << "handler-only syscall dropped from the refined filter";
  }
}

TEST(HandlerRootTest, LiteralHandlerOperandKeepsItsSyscallsInTheFilter) {
  expect_handler_syscall_in_every_epoch(
      "; !name: handler_literal\n"
      "; !permitted: CapKill\n"
      "; !uid: 1000\n"
      "; !gid: 1000\n"
      "func @on_term(1) {\n"
      "entry:\n"
      "  %1 = syscall kill(7, 15)\n"
      "  ret 0\n"
      "}\n"
      "func @main(0) {\n"
      "entry:\n"
      "  %0 = syscall signal(5, @on_term)\n"
      "  %1 = syscall getuid()\n"
      "  exit 0\n"
      "}\n");
}

TEST(HandlerRootTest, RegisterPassedHandlerKeepsItsSyscallsInTheFilter) {
  expect_handler_syscall_in_every_epoch(
      "; !name: handler_reg\n"
      "; !permitted: CapKill\n"
      "; !uid: 1000\n"
      "; !gid: 1000\n"
      "func @on_term(1) {\n"
      "entry:\n"
      "  %1 = syscall kill(7, 15)\n"
      "  ret 0\n"
      "}\n"
      "func @main(0) {\n"
      "entry:\n"
      "  %0 = funcaddr @on_term\n"
      "  %1 = syscall signal(5, %0)\n"
      "  %2 = syscall getuid()\n"
      "  exit 0\n"
      "}\n");
}

}  // namespace
}  // namespace pa::privanalyzer
