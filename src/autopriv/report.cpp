#include "autopriv/report.h"

#include <sstream>

#include "ir/verifier.h"

namespace pa::autopriv {

std::string StaticReport::to_string() const {
  std::ostringstream os;
  os << "AutoPriv report for " << program << "\n";
  os << "  transformation: " << stats.to_string() << "\n";
  if (!stats.sites.empty()) {
    os << "  privilege dead points (priv_remove placements):\n";
    for (const RemoveSite& site : stats.sites)
      os << "    " << site.to_string() << "\n";
  }
  if (!handler_caps.empty())
    os << "  signal-handler pinned caps: " << handler_caps.to_string() << "\n";
  os << "  function summaries:\n";
  for (const auto& [name, caps] : function_summaries)
    if (!caps.empty())
      os << "    @" << name << ": " << caps.to_string() << "\n";
  return os.str();
}

StaticReport run_autopriv(ir::Module& module, const std::string& entry,
                          Options options) {
  ir::verify_or_throw(module);

  StaticReport report;
  report.program = module.name();

  PrivLiveness analysis(module, options);
  for (const ir::Function& f : module.functions())
    report.function_summaries[f.name()] = analysis.summary(f.name());
  report.handler_caps = analysis.handler_caps();

  report.stats = insert_removes(module, entry, options);

  ir::verify_or_throw(module);
  return report;
}

}  // namespace pa::autopriv
