// The privanalyzerd wire protocol: length-prefixed, versioned frames over a
// Unix-domain stream socket, carrying the one-shot CLI's exit-code and
// diagnostic contract on the wire.
//
// ## Framing
//
// Every message is one frame: a fixed 12-byte little-endian header
//
//   u32 magic    "PAD1" (0x31444150)
//   u16 version  kProtoVersion — the whole protocol is versioned, not
//                individual messages; a mismatch rejects the connection
//   u16 type     MsgType
//   u32 length   payload byte count, at most kMaxFrameBytes
//
// followed by `length` payload bytes. Any deviation — wrong magic, unknown
// version, oversized length, truncated payload — is a protocol error: the
// server answers with an Error frame when the socket still works, then
// reaps the connection; other connections are unaffected.
//
// ## Payload
//
// Payloads are ordered `key=value` lines. Values are percent-escaped
// ('%' -> %25, '\n' -> %0A, '\r' -> %0D) so program source text and
// rendered reports travel verbatim. Unknown keys are ignored (forward
// compatibility within a version).
//
// ## Conversation
//
// Requests are synchronous per connection: the client writes one request
// frame and reads until the matching reply type arrives. Event frames may
// interleave at any point (job progress, streamed diagnostics) and Result
// frames arrive unsolicited when a submitted job reaches a terminal state
// — client loops must tolerate both between request and reply.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/socket.h"

namespace pa::daemon {

inline constexpr std::uint32_t kMagic = 0x31444150;  // "PAD1" little-endian
inline constexpr std::uint16_t kProtoVersion = 1;
inline constexpr std::size_t kMaxFrameBytes = 4u << 20;

enum class MsgType : std::uint16_t {
  // client -> server
  Submit = 1,    // enqueue an analysis job
  Status = 2,    // poll one job's state
  Cancel = 3,    // cooperative cancel of a queued/running job
  Ping = 4,      // heartbeat
  Shutdown = 5,  // drain (finish running jobs) or abort, then exit
  // server -> client
  SubmitOk = 64,    // job admitted; carries the job id
  Rejected = 65,    // admission control refused the job (e.g. backpressure)
  StatusReply = 66,
  Event = 67,       // streamed progress/diagnostic line for a job
  Result = 68,      // terminal state + the job's rendered result
  Pong = 69,
  ErrorMsg = 70,    // structured protocol/server error
  Draining = 71,    // shutdown acknowledged; no further submits accepted
};

std::string_view msg_type_name(MsgType t);

struct Frame {
  MsgType type{};
  std::string payload;
};

/// Write one frame. Propagates socket errors (Stage::Daemon StageError).
void write_frame(support::Socket& s, const Frame& f);

/// Read one frame. nullopt on clean EOF before a header byte; throws a
/// Stage::Daemon StageError on malformed framing, timeouts, or I/O errors.
std::optional<Frame> read_frame(support::Socket& s, int timeout_ms = -1,
                                std::size_t max_payload = kMaxFrameBytes);

// --- payload key=value helpers ---------------------------------------------

using KvPairs = std::vector<std::pair<std::string, std::string>>;

std::string encode_kv(const KvPairs& kv);
/// Throws a Stage::Daemon StageError on a line without '='.
KvPairs decode_kv(std::string_view payload);
/// First value for `key`; `fallback` when absent.
std::string kv_get(const KvPairs& kv, std::string_view key,
                   std::string_view fallback = "");
std::uint64_t kv_get_u64(const KvPairs& kv, std::string_view key,
                         std::uint64_t fallback);
double kv_get_double(const KvPairs& kv, std::string_view key, double fallback);

// --- messages ---------------------------------------------------------------

/// One analysis job, mirroring the one-shot CLI's knobs so a daemon job and
/// a CLI run of the same inputs are the same pipeline invocation.
struct JobRequest {
  /// "pir" (PrivIR text in `source`), "pc" (PrivC text), or "builtin"
  /// (`source` names a Table-II model: passwd, su, ping, thttpd, sshd, ...).
  std::string kind = "pir";
  std::string source;
  std::string name;  // display name; loader defaults apply when empty

  std::uint64_t max_states = 2'000'000;
  std::uint64_t max_bytes = 0;
  unsigned search_threads = 1;
  unsigned rosa_threads = 1;
  unsigned escalate_rounds = 0;
  double deadline_secs = 0.0;  // per-job wall budget (0 = server default)
  bool run_rosa = true;
  bool use_cache = true;  // consult the daemon's resident verdict cache
  bool reduction = true;  // symmetry + partial-order reduction (rosa/canon.h)
  bool fused = true;      // fuse each epoch's attacks into one exploration
  /// EpochFilter mode: "off" | "report" | "enforce" (filter_mode_name
  /// spelling; unknown values are a job-level usage error, not a protocol
  /// error). Enforced jobs use the default -EPERM violation semantics.
  std::string filters = "off";

  Frame to_frame() const;
  static JobRequest from_frame(const Frame& f);
};

struct SubmitReply {
  bool accepted = false;
  std::uint64_t job_id = 0;
  std::string reason;  // Rejected: "backpressure", "draining", ...

  Frame to_frame() const;
  static SubmitReply from_frame(const Frame& f);
};

struct StatusReply {
  std::uint64_t job_id = 0;
  std::string state;  // job_state_name spelling, "unknown" for bad ids

  Frame to_frame() const;
  static StatusReply from_frame(const Frame& f);
};

struct EventMsg {
  std::uint64_t job_id = 0;
  std::string kind;  // "state" | "diagnostic"
  std::string text;

  Frame to_frame() const;
  static EventMsg from_frame(const Frame& f);
};

struct ResultMsg {
  std::uint64_t job_id = 0;
  std::string state;  // terminal job_state_name
  int exit_code = 0;  // the one-shot CLI contract (0/1/...)
  std::string body;   // daemon::render_job_result text

  Frame to_frame() const;
  static ResultMsg from_frame(const Frame& f);
};

}  // namespace pa::daemon
