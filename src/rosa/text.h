// Textual query format for ROSA, mirroring the role of the paper's Maude
// input files (Figs. 2 and 4). One declaration per line; '#' starts a
// comment; '*' is the wildcard argument.
//
//   process 1 uid 10 11 12 gid 10 11 12
//   dir     2 "/etc"        perms rwxrwxrwx owner 40 group 41 inode 3
//   file    3 "/etc/passwd" perms --------- owner 40 group 41
//   socket  5 owner 1
//   user  10
//   group 41
//   msg open(1, 3, r, {})
//   msg setuid(1, *, {CapSetuid})
//   msg chown(1, *, *, 41, {CapChown})
//   msg chmod(1, *, 0777, {})
//   goal rdfset 1 contains 3
//
// Goals: "rdfset P contains F", "wrfset P contains F",
//        "privport P", "terminated P".
// Optional: "attacker full|cfi-ordered|fixed-args" (default full).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "rosa/search.h"

namespace pa::rosa {

/// Parse a query; throws pa::Error with the offending line on bad input.
Query parse_query(std::string_view text);

/// Non-throwing variant.
std::optional<Query> try_parse_query(std::string_view text,
                                     std::string* error);

/// Render the initial configuration + messages of a query in the Maude-like
/// object syntax used for reports.
std::string print_query(const Query& q);

}  // namespace pa::rosa
