; PrivLint fixture: seeded redundant-priv-remove defect (and nothing else).
; The second priv_remove drops CapSysAdmin, which the launch configuration
; never granted — the program's mental model of its privileges has drifted.
;
; !name: redundant_remove
; !description: lint fixture - priv_remove of a never-permitted capability
; !permitted: CapNetBindService
; !uid: 1000
; !gid: 1000

func @main(0) {
entry:
  %0 = syscall socket(0)
  priv_raise {CapNetBindService}
  %1 = syscall bind(%0, 443)
  priv_lower {CapNetBindService}
  priv_remove {CapNetBindService}
  priv_remove {CapSysAdmin}
  %2 = syscall close(%0)
  exit 0
}
