# Empty dependencies file for rosa_text_test.
# This may be replaced when dependencies are built.
