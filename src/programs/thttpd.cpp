// Model of thttpd 2.26 (Table II), privilege-annotated in the AutoPriv
// style.
//
// Like ping, thttpd concentrates privilege use in startup (§VII-C): it
// chowns its log to the run user (CAP_CHOWN), performs its uid bookkeeping
// (CAP_SETUID), parses configuration, sets the server root with chroot
// (CAP_SYS_CHROOT), binds the HTTP port (CAP_NET_BIND_SERVICE), fixes its
// groups (CAP_SETGID), and then serves requests with an empty permitted set
// for >90% of its execution. The workload is ApacheBench fetching one 1 MB
// file (modelled at 1:10 dynamic-instruction scale).
#include "programs/common.h"

namespace pa::programs {

using namespace detail;

namespace {

// Weights per Table III at 1:10 scale (paper total ~47.7M -> ~4.77M):
constexpr int kStartupWork = 280;       // thttpd_priv1 ~0.00%
constexpr long kConfigWork = 468000;    // thttpd_priv2 ~9.8%
constexpr int kPostChrootWork = 330;    // thttpd_priv3 ~0.00%
constexpr int kGroupWork = 680;         // thttpd_priv4 ~0.02%
constexpr long kServeChunks = 1024;     // 1 MB at 1 KB chunks
constexpr int kPerChunkWork = 4180;     // thttpd_priv5 ~90.2%

}  // namespace

ProgramSpec make_thttpd() {
  ProgramSpec spec;
  spec.name = "thttpd";
  spec.description = "Small single-process web server";
  spec.launch_permitted = {Capability::Chown, Capability::Setgid,
                           Capability::Setuid, Capability::NetBindService,
                           Capability::SysChroot};
  spec.launch_creds = caps::Credentials::of_user(kUser, kUserGid);
  spec.module = ir::Module("thttpd");

  IRBuilder b(spec.module);
  b.begin_function("main", 0);

  // --- thttpd_priv1: log setup + uid bookkeeping (all five caps live) ---
  b.work(kStartupWork);
  // Stale-pid cleanup probe; puts kill(2) in the syscall surface.
  b.syscall("kill", {B::i(99999), B::i(0)});
  int log = b.syscall("open", {B::s("/var/log/thttpd/access.log"),
                               B::i(SyscallEncoding::kWrite |
                                    SyscallEncoding::kCreate)});
  b.priv_raise({Capability::Chown, Capability::Setuid});
  b.syscall("chown",
            {B::s("/var/log/thttpd/access.log"), B::i(kUser), B::i(kUserGid)});
  b.syscall("setuid", {B::i(kUser)});  // already the run user: bookkeeping
  b.priv_lower({Capability::Chown, Capability::Setuid});
  // CAP_CHOWN and CAP_SETUID dead -> removed (thttpd_priv2 begins).

  // --- thttpd_priv2: configuration parsing, then chroot to the web root ---
  emit_work(b, "config", kConfigWork);
  b.priv_raise({Capability::SysChroot});
  b.syscall("chroot", {B::s("/var/www")});
  b.priv_lower({Capability::SysChroot});
  // CAP_SYS_CHROOT dead -> removed (thttpd_priv3).

  b.work(kPostChrootWork);
  int sock = b.syscall("socket", {B::i(SyscallEncoding::kSockStream)});
  b.priv_raise({Capability::NetBindService});
  b.syscall("bind", {B::r(sock), B::i(80)});
  b.priv_lower({Capability::NetBindService});
  // CAP_NET_BIND_SERVICE dead -> removed (thttpd_priv4).

  // --- thttpd_priv4: group bookkeeping ---
  b.priv_raise({Capability::Setgid});
  b.syscall("setgroups", {B::i(kUserGid)});
  b.syscall("setgid", {B::i(kUserGid)});
  b.work(kGroupWork);
  b.priv_lower({Capability::Setgid});
  // CAP_SETGID dead -> removed (thttpd_priv5: the serve loop, unprivileged).

  // --- thttpd_priv5: serve one 1 MB request ---
  int file = b.syscall("open", {B::s("/var/www/index.html"),
                                B::i(SyscallEncoding::kRead)});
  emit_loop(b, "serve", kServeChunks, [&](int) {
    b.syscall("read", {B::r(file), B::i(1024)});
    b.syscall("write", {B::r(sock), B::i(1024)});
    emit_work(b, "chunk", kPerChunkWork);
  });
  b.syscall("close", {B::r(file)});
  b.syscall("close", {B::r(sock)});
  b.syscall("close", {B::r(log)});
  b.exit(B::i(0));
  b.end_function();

  spec.module.recompute_address_taken();
  return spec;
}

}  // namespace pa::programs
