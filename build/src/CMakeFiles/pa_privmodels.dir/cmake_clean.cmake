file(REMOVE_RECURSE
  "CMakeFiles/pa_privmodels.dir/privmodels/capsicum.cpp.o"
  "CMakeFiles/pa_privmodels.dir/privmodels/capsicum.cpp.o.d"
  "CMakeFiles/pa_privmodels.dir/privmodels/compare.cpp.o"
  "CMakeFiles/pa_privmodels.dir/privmodels/compare.cpp.o.d"
  "CMakeFiles/pa_privmodels.dir/privmodels/solaris.cpp.o"
  "CMakeFiles/pa_privmodels.dir/privmodels/solaris.cpp.o.d"
  "libpa_privmodels.a"
  "libpa_privmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_privmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
