#include "lint/lint.h"

#include <algorithm>

#include "lint/passes.h"
#include "support/str.h"

namespace pa::lint {

std::string Finding::location() const {
  if (function.empty()) return "<program>";
  std::string loc = str::cat("@", function);
  if (block >= 0) {
    loc = str::cat(loc, ".bb", block);
    if (instr >= 0) loc = str::cat(loc, "[", instr, "]");
  }
  return loc;
}

std::string Finding::to_string() const {
  std::string out =
      str::cat(support::severity_name(severity), " [lint/",
               support::diag_code_name(code), "] ", location(), ": ", message);
  if (!hint.empty()) out = str::cat(out, " (hint: ", hint, ")");
  return out;
}

support::Diagnostic Finding::to_diagnostic(const std::string& program) const {
  std::string msg = str::cat(location(), ": ", message);
  if (!hint.empty()) msg = str::cat(msg, " (hint: ", hint, ")");
  return {support::Stage::Lint, severity, code, program, std::move(msg)};
}

int LintReport::errors() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == support::Severity::Error;
      }));
}

int LintReport::warnings() const {
  return static_cast<int>(findings.size()) - errors();
}

std::string LintReport::to_string() const {
  std::string out = str::cat("lint ", program, ": ");
  if (clean()) {
    out += "clean";
    if (!suppressed.empty())
      out = str::cat(out, " (", suppressed.size(), " allowed by !lint-allow)");
    return out + "\n";
  }
  out = str::cat(out, errors(), " error(s), ", warnings(), " warning(s)\n");
  for (const Finding& f : findings) out = str::cat(out, "  ", f.to_string(), "\n");
  for (const Finding& f : suppressed)
    out = str::cat(out, "  allowed: ", f.to_string(), "\n");
  return out;
}

std::vector<support::Diagnostic> LintReport::to_diagnostics() const {
  std::vector<support::Diagnostic> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.to_diagnostic(program));
  return out;
}

const std::vector<LintPassInfo>& lint_passes() {
  static const std::vector<LintPassInfo> kPasses = {
      {support::DiagCode::RedundantPrivRemove, "redundant-priv-remove",
       "priv_remove of capabilities provably absent from the permitted set",
       support::Severity::Warning},
      {support::DiagCode::NeverRaisedPrivilege, "never-raised-privilege",
       "capability permitted at launch but never raised on any path",
       support::Severity::Warning},
      {support::DiagCode::RaiseWithoutLower, "raise-without-lower",
       "a path from priv_raise to function return with no matching lower",
       support::Severity::Error},
      {support::DiagCode::UnreachableBlock, "unreachable-block",
       "basic block unreachable from the function entry",
       support::Severity::Warning},
      {support::DiagCode::EmptyIndirectTargets, "empty-indirect-targets",
       "indirect call whose refined target set is empty",
       support::Severity::Error},
      {support::DiagCode::UnusedPrivilegeEpoch, "unused-privilege-epoch",
       "raise..lower region in which nothing can use the raised capability",
       support::Severity::Warning},
      {support::DiagCode::OverbroadEpochSyscalls, "overbroad-epoch-syscalls",
       "permitted-but-dead capability with its gated syscalls still reachable",
       support::Severity::Warning},
  };
  return kPasses;
}

LintReport run_lints(const programs::ProgramSpec& spec,
                     const LintOptions& options) {
  // One liveness (and call-graph) build shared by all passes.
  autopriv::Options ap;
  ap.indirect_calls = options.indirect_calls;
  autopriv::PrivLiveness liveness(spec.module, ap);
  detail::PassContext ctx{spec, liveness, options};

  using PassFn = void (*)(const detail::PassContext&, std::vector<Finding>&);
  static const std::pair<support::DiagCode, PassFn> kImpls[] = {
      {support::DiagCode::RedundantPrivRemove,
       detail::check_redundant_priv_remove},
      {support::DiagCode::NeverRaisedPrivilege,
       detail::check_never_raised_privilege},
      {support::DiagCode::RaiseWithoutLower, detail::check_raise_without_lower},
      {support::DiagCode::UnreachableBlock, detail::check_unreachable_block},
      {support::DiagCode::EmptyIndirectTargets,
       detail::check_empty_indirect_targets},
      {support::DiagCode::UnusedPrivilegeEpoch,
       detail::check_unused_privilege_epoch},
      {support::DiagCode::OverbroadEpochSyscalls,
       detail::check_overbroad_epoch_syscalls},
  };

  LintReport report;
  report.program = spec.name;
  std::vector<Finding> all;
  for (const auto& [code, fn] : kImpls) {
    if (options.disabled.contains(code)) continue;
    fn(ctx, all);
  }
  for (Finding& f : all) {
    const bool allowed =
        options.honor_allow_directive && spec.lint_allow.contains(f.code);
    (allowed ? report.suppressed : report.findings).push_back(std::move(f));
  }
  return report;
}

}  // namespace pa::lint
