# Empty compiler generated dependencies file for bench_sshd_refactor.
# This may be replaced when dependencies are built.
