# Empty compiler generated dependencies file for pa_chronopriv.
# This may be replaced when dependencies are built.
