#include "dataflow/solver.h"

namespace pa::dataflow {

std::vector<std::vector<int>> predecessors(const ir::Function& f) {
  std::vector<std::vector<int>> preds(f.blocks().size());
  for (std::size_t b = 0; b < f.blocks().size(); ++b)
    for (int s : f.blocks()[b].successors())
      preds[static_cast<std::size_t>(s)].push_back(static_cast<int>(b));
  return preds;
}

bool is_exit_block(const ir::BasicBlock& bb) {
  const ir::Instruction* t = bb.terminator();
  if (!t) return false;
  switch (t->op) {
    case ir::Opcode::Ret:
    case ir::Opcode::Exit:
    case ir::Opcode::Unreachable:
      return true;
    default:
      return false;
  }
}

}  // namespace pa::dataflow
