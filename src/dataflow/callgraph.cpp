// CallGraph construction. Lives in pa_dataflow (not pa_ir) because the
// Refined policy runs the function-pointer propagation, and pa_ir must not
// depend upward on the dataflow engine. See ir/callgraph.h.
#include "ir/callgraph.h"

#include "dataflow/funcptr.h"

namespace pa::ir {

std::string_view indirect_call_policy_name(IndirectCallPolicy p) {
  switch (p) {
    case IndirectCallPolicy::Conservative: return "conservative";
    case IndirectCallPolicy::Refined: return "refined";
    case IndirectCallPolicy::AssumeNone: return "assume-none";
  }
  return "?";
}

CallGraph CallGraph::build(const Module& module, IndirectCallPolicy policy) {
  CallGraph cg;
  cg.policy_ = policy;
  for (const Function& f : module.functions())
    if (f.address_taken()) cg.address_taken_.insert(f.name());

  dataflow::FuncPtrResult funcptrs;
  if (policy == IndirectCallPolicy::Refined) {
    funcptrs = dataflow::analyze_func_ptrs(module);
    cg.handlers_.insert(funcptrs.signal_handlers.begin(),
                        funcptrs.signal_handlers.end());
  }

  for (const Function& f : module.functions()) {
    auto& out = cg.edges_[f.name()];
    for (const BasicBlock& bb : f.blocks()) {
      for (const Instruction& inst : bb.instructions) {
        switch (inst.op) {
          case Opcode::Call:
            out.insert(inst.symbol);
            break;
          case Opcode::CallInd:
            cg.indirect_callers_.insert(f.name());
            if (policy == IndirectCallPolicy::Conservative) {
              out.insert(cg.address_taken_.begin(), cg.address_taken_.end());
            } else if (policy == IndirectCallPolicy::Refined) {
              const int reg = inst.operands[0].reg_index();
              const std::set<std::string>& targets =
                  funcptrs.targets(f.name(), reg);
              out.insert(targets.begin(), targets.end());
              // Record the per-site set even when empty: lint's
              // empty-indirect-targets check distinguishes "site exists,
              // no feasible target" from "no such site".
              cg.refined_[f.name()][reg] = targets;
            }
            break;
          case Opcode::Syscall:
            // signal(signo, handler): the handler becomes asynchronously
            // callable; record it so analyses can treat it as a root.
            // Literal @handler operands are roots under every policy. A
            // register-valued handler is resolved by the function-pointer
            // propagation under Refined; under Conservative any unary
            // address-taken function may be registered (the propagated
            // values all originate from address-taken marking sites, so the
            // refined handler set stays a subset of this).
            if (inst.symbol == "signal") {
              bool saw_register_handler = false;
              for (std::size_t i = 1; i < inst.operands.size(); ++i) {
                const Operand& op = inst.operands[i];
                if (op.kind() == Operand::Kind::Func)
                  cg.handlers_.insert(op.str_value());
                else if (op.kind() == Operand::Kind::Reg)
                  saw_register_handler = true;
              }
              if (saw_register_handler &&
                  policy == IndirectCallPolicy::Conservative) {
                for (const std::string& t : cg.address_taken_)
                  if (module.has_function(t) &&
                      module.function(t).num_params() == 1)
                    cg.handlers_.insert(t);
              }
            }
            break;
          default:
            break;
        }
      }
    }
  }
  return cg;
}

const std::set<std::string>& CallGraph::callees(const std::string& f) const {
  auto it = edges_.find(f);
  return it == edges_.end() ? empty_ : it->second;
}

const std::set<std::string>& CallGraph::refined_targets(const std::string& f,
                                                        int reg) const {
  auto fit = refined_.find(f);
  if (fit == refined_.end()) return empty_;
  auto rit = fit->second.find(reg);
  return rit == fit->second.end() ? empty_ : rit->second;
}

std::set<std::string> CallGraph::reachable_from(const std::string& root) const {
  std::set<std::string> seen{root};
  std::vector<std::string> work{root};
  while (!work.empty()) {
    std::string cur = std::move(work.back());
    work.pop_back();
    for (const std::string& next : callees(cur))
      if (seen.insert(next).second) work.push_back(next);
  }
  return seen;
}

}  // namespace pa::ir
