file(REMOVE_RECURSE
  "CMakeFiles/pa_caps.dir/caps/capability.cpp.o"
  "CMakeFiles/pa_caps.dir/caps/capability.cpp.o.d"
  "CMakeFiles/pa_caps.dir/caps/credentials.cpp.o"
  "CMakeFiles/pa_caps.dir/caps/credentials.cpp.o.d"
  "CMakeFiles/pa_caps.dir/caps/priv_state.cpp.o"
  "CMakeFiles/pa_caps.dir/caps/priv_state.cpp.o.d"
  "libpa_caps.a"
  "libpa_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
