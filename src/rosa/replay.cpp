#include "rosa/replay.h"

#include <algorithm>

#include "support/error.h"
#include "support/str.h"

namespace pa::rosa {
namespace {

/// Open flags for an Action's access-mode bits.
unsigned flags_for(int accmode) {
  unsigned flags = 0;
  if (accmode & kAccRead) flags |= os::OpenFlags::kRead;
  if (accmode & kAccWrite) flags |= os::OpenFlags::kWrite;
  return flags;
}

}  // namespace

Materialized::Materialized(const State& state) {
  next_object_id_ = state.next_object_id();

  // Files first: each file lives under its directory entry's directory
  // (named after the dir object), or under "/" when pathless.
  for (const FileObj& f : state.files) {
    const DirObj* dir = state.parent_dir_of(f.id);
    std::string path;
    if (dir) {
      std::string dpath = str::cat("/dir", dir->id);
      os::Ino dino = kernel_.vfs().mkdirs(dpath);
      kernel_.vfs().inode(dino).meta = dir->meta;
      path = str::cat(dpath, "/file", f.id);
    } else {
      path = str::cat("/file", f.id);
    }
    kernel_.vfs().add_file(path, f.meta, "content");
    file_paths_[f.id] = path;
  }

  // Dangling directory entries (unlink victims / creat+link targets) still
  // need their directory to exist for replayed creat()/link() calls.
  for (const DirObj& d : state.dirs) {
    if (d.inode != -1) continue;
    os::Ino dino = kernel_.vfs().mkdirs(str::cat("/dir", d.id));
    kernel_.vfs().inode(dino).meta = d.meta;
  }

  for (const ProcObj& p : state.procs) {
    caps::Credentials creds{p.uid, p.gid, p.supplementary};
    creds.set_supplementary(p.supplementary);
    os::Pid pid =
        kernel_.spawn(str::cat("rosa_proc", p.id), creds, caps::CapSet::full());
    kernel_.sys_prctl(pid, os::PrctlOp::SetSecurebitsStrict);
    // Start with nothing raised; perform() raises per-action privileges.
    kernel_.process(pid).privs = caps::PrivState::launched_with(
        caps::CapSet::full());
    kernel_.process(pid).privs.set_securebits(caps::SecureBits{
        .no_setuid_fixup = true, .noroot = true, .keep_caps = false});
    if (!p.running) kernel_.sys_exit(pid, 0);
    procs_[p.id] = pid;

    // Pre-opened files (rdfset/wrfset in the initial state).
    for (int fid : p.rdfset) {
      auto it = file_paths_.find(fid);
      PA_CHECK(it != file_paths_.end(), "rdfset names unknown file");
      // Open bypassing permission checks is not modelled; materialization
      // grants a temporary full effective set to honour the declared state.
      apply_privs(pid, caps::CapSet::full());
      os::SysResult fd = kernel_.sys_open(pid, it->second,
                                          os::OpenFlags::kRead);
      PA_CHECK(fd.ok(), "cannot materialize rdfset entry");
      open_fds_[{p.id, fid}] = static_cast<os::Fd>(fd.value());
      apply_privs(pid, {});
    }
    for (int fid : p.wrfset) {
      auto it = file_paths_.find(fid);
      PA_CHECK(it != file_paths_.end(), "wrfset names unknown file");
      apply_privs(pid, caps::CapSet::full());
      unsigned flags = os::OpenFlags::kWrite;
      if (p.rdfset.contains(fid)) flags |= os::OpenFlags::kRead;
      os::SysResult fd = kernel_.sys_open(pid, it->second, flags);
      PA_CHECK(fd.ok(), "cannot materialize wrfset entry");
      open_fds_[{p.id, fid}] = static_cast<os::Fd>(fd.value());
      apply_privs(pid, {});
    }
  }

  for (const SockObj& s : state.socks) {
    auto pit = procs_.find(s.owner_proc);
    if (pit == procs_.end()) continue;
    apply_privs(pit->second, caps::CapSet::full());
    os::SysResult fd = kernel_.sys_socket(pit->second, os::SockType::Stream);
    PA_CHECK(fd.ok(), "cannot materialize socket");
    if (s.port != -1) {
      os::SysResult r = kernel_.sys_bind(
          pit->second, static_cast<os::Fd>(fd.value()), s.port);
      PA_CHECK(r.ok(), "cannot materialize bound socket");
    }
    apply_privs(pit->second, {});
    sock_fds_[s.id] = {pit->second, static_cast<os::Fd>(fd.value())};
  }
}

os::Pid Materialized::pid_of(int proc_id) const {
  auto it = procs_.find(proc_id);
  PA_CHECK(it != procs_.end(), str::cat("unknown ROSA process ", proc_id));
  return it->second;
}

const std::string& Materialized::path_of(int file_id) const {
  auto it = file_paths_.find(file_id);
  PA_CHECK(it != file_paths_.end(), str::cat("unknown ROSA file ", file_id));
  return it->second;
}

void Materialized::apply_privs(os::Pid pid, caps::CapSet privs) {
  // The attack model gives each syscall its own usable privilege set; the
  // kernel models that as raising exactly those capabilities.
  os::Process& p = kernel_.process(pid);
  p.privs.lower(caps::CapSet::full());
  bool ok = p.privs.raise(privs);
  PA_CHECK(ok, "replay: privilege no longer permitted");
}

os::SysResult Materialized::perform(const Action& a) {
  const os::Pid pid = pid_of(a.proc);
  apply_privs(pid, a.privs);
  const auto& args = a.args;
  auto arg = [&](std::size_t i) {
    PA_CHECK(i < args.size(), "replay: missing action argument");
    return args[i];
  };

  os::SysResult result = os::Errno::Enosys;
  switch (a.sys) {
    case Sys::Open: {
      os::SysResult fd =
          kernel_.sys_open(pid, path_of(arg(0)), flags_for(arg(1)));
      if (fd.ok()) open_fds_[{a.proc, arg(0)}] = static_cast<os::Fd>(fd.value());
      result = fd;
      break;
    }
    case Sys::Chmod:
      result = kernel_.sys_chmod(pid, path_of(arg(0)),
                                 os::Mode(static_cast<std::uint16_t>(arg(1))));
      break;
    case Sys::Fchmod: {
      auto it = open_fds_.find({a.proc, arg(0)});
      result = it == open_fds_.end()
                   ? os::SysResult(os::Errno::Ebadf)
                   : kernel_.sys_fchmod(
                         pid, it->second,
                         os::Mode(static_cast<std::uint16_t>(arg(1))));
      break;
    }
    case Sys::Chown:
      result = kernel_.sys_chown(pid, path_of(arg(0)), arg(1), arg(2));
      break;
    case Sys::Fchown: {
      auto it = open_fds_.find({a.proc, arg(0)});
      result = it == open_fds_.end()
                   ? os::SysResult(os::Errno::Ebadf)
                   : kernel_.sys_fchown(pid, it->second, arg(1), arg(2));
      break;
    }
    case Sys::Unlink:
      result = kernel_.sys_unlink(pid, path_of(arg(0)));
      break;
    case Sys::Rename:
      result = kernel_.sys_rename(pid, path_of(arg(0)), path_of(arg(1)));
      break;
    case Sys::Creat: {
      // A dangling ROSA dir entry corresponds to a fresh name inside that
      // entry's directory.
      std::string path = str::cat("/dir", arg(0), "/created", arg(0));
      os::SysResult fd = kernel_.sys_creat(
          pid, path, os::Mode(static_cast<std::uint16_t>(arg(1))));
      if (fd.ok()) {
        file_paths_[next_object_id_] = path;
        open_fds_[{a.proc, next_object_id_}] = static_cast<os::Fd>(fd.value());
        ++next_object_id_;
      }
      result = fd;
      break;
    }
    case Sys::Link: {
      std::string neu = str::cat("/dir", arg(1), "/linked", arg(1));
      result = kernel_.sys_link(pid, path_of(arg(0)), neu);
      if (result.ok()) file_paths_[arg(0)] = neu;  // additional name
      break;
    }
    case Sys::Setuid:
      result = kernel_.sys_setuid(pid, arg(0));
      break;
    case Sys::Seteuid:
      result = kernel_.sys_seteuid(pid, arg(0));
      break;
    case Sys::Setresuid:
      result = kernel_.sys_setresuid(pid, arg(0), arg(1), arg(2));
      break;
    case Sys::Setgid:
      result = kernel_.sys_setgid(pid, arg(0));
      break;
    case Sys::Setegid:
      result = kernel_.sys_setegid(pid, arg(0));
      break;
    case Sys::Setresgid:
      result = kernel_.sys_setresgid(pid, arg(0), arg(1), arg(2));
      break;
    case Sys::Kill:
      result = kernel_.sys_kill(pid, pid_of(arg(0)), arg(1));
      break;
    case Sys::Socket: {
      os::SysResult fd = kernel_.sys_socket(
          pid, arg(0) == 1 ? os::SockType::Raw : os::SockType::Stream);
      if (fd.ok())
        sock_fds_[next_object_id_++] = {pid, static_cast<os::Fd>(fd.value())};
      result = fd;
      break;
    }
    case Sys::Bind: {
      auto it = sock_fds_.find(arg(0));
      result = it == sock_fds_.end()
                   ? os::SysResult(os::Errno::Ebadf)
                   : kernel_.sys_bind(pid, it->second.second, arg(1));
      break;
    }
    case Sys::Connect: {
      auto it = sock_fds_.find(arg(0));
      result = it == sock_fds_.end()
                   ? os::SysResult(os::Errno::Ebadf)
                   : kernel_.sys_connect(pid, it->second.second, arg(1));
      break;
    }
  }
  apply_privs(pid, {});
  return result;
}

bool Materialized::replay(const std::vector<Action>& witness,
                          std::string* diag) {
  for (std::size_t i = 0; i < witness.size(); ++i) {
    os::SysResult r = perform(witness[i]);
    if (!r.ok()) {
      if (diag)
        *diag = str::cat("step ", i + 1, " `", witness[i].to_string(),
                         "` failed with ", os::errno_name(r.error()));
      return false;
    }
  }
  return true;
}

bool Materialized::holds_open(int proc, int file, bool for_write) const {
  auto it = open_fds_.find({proc, file});
  if (it == open_fds_.end()) return false;
  const os::Process& p = kernel_.process(pid_of(proc));
  auto fit = p.fds.find(it->second);
  if (fit == p.fds.end()) return false;
  const unsigned need =
      for_write ? os::OpenFlags::kWrite : os::OpenFlags::kRead;
  return (fit->second.flags & need) != 0;
}

bool Materialized::is_terminated(int proc) const {
  return !kernel_.process(pid_of(proc)).alive();
}

bool Materialized::has_privileged_bind(int proc) const {
  const os::Pid pid = pid_of(proc);
  for (int port = 1; port <= os::kPrivilegedPortMax; ++port)
    if (kernel_.net().port_owner(port) == pid) return true;
  return false;
}

}  // namespace pa::rosa
