// Goal-predicate builders: the "compromised system state" patterns of the
// paper's queries, expressed as reusable predicates on ROSA states.
#pragma once

#include "rosa/search.h"

namespace pa::rosa {

/// Process `proc` holds `file` open for reading (Fig. 4's pattern, and the
/// read-/dev/mem attack goal).
std::function<bool(const State&)> goal_file_in_rdfset(int proc, int file);

/// Process `proc` holds `file` open for writing.
std::function<bool(const State&)> goal_file_in_wrfset(int proc, int file);

/// Some socket owned by `proc` is bound to a privileged port (< 1024).
std::function<bool(const State&)> goal_privileged_port_bound(int proc);

/// Process `victim` has been terminated.
std::function<bool(const State&)> goal_proc_terminated(int victim);

/// Conjunction / disjunction combinators for composite goals.
std::function<bool(const State&)> goal_and(
    std::function<bool(const State&)> a, std::function<bool(const State&)> b);
std::function<bool(const State&)> goal_or(
    std::function<bool(const State&)> a, std::function<bool(const State&)> b);

}  // namespace pa::rosa
