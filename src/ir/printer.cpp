#include "ir/printer.h"

#include <sstream>

namespace pa::ir {

std::string print(const Function& f) {
  std::ostringstream os;
  os << "func @" << f.name() << "(" << f.num_params() << ") {\n";
  for (const BasicBlock& bb : f.blocks()) {
    os << bb.label << ":\n";
    for (const Instruction& inst : bb.instructions)
      os << "  " << inst.to_string() << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string print(const Module& m) {
  std::ostringstream os;
  os << "; module " << m.name() << "\n";
  for (const Function& f : m.functions()) os << print(f) << "\n";
  return os.str();
}

}  // namespace pa::ir
