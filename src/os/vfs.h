// The SimOS virtual filesystem: inodes (regular files, directories, and
// character devices), a hierarchical namespace, and permission-checked path
// resolution built on os/access.h.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "os/access.h"
#include "os/errno.h"

namespace pa::os {

using Ino = int;
inline constexpr Ino kNoIno = 0;
inline constexpr Ino kRootIno = 1;

enum class InodeType { Regular, Directory, CharDevice };

/// A filesystem object. Directories carry an entry map; character devices
/// carry a tag ("mem", "null", ...) that the kernel's read/write paths and
/// the attack definitions recognise.
struct Inode {
  Ino ino = kNoIno;
  InodeType type = InodeType::Regular;
  FileMeta meta;
  std::string data;                   // regular-file contents
  std::string device_tag;             // char devices only
  std::map<std::string, Ino> entries; // directories only
  int nlink = 1;
};

/// Outcome of resolving a path down to its parent directory + final name.
struct ResolvedParent {
  Ino parent;
  std::string leaf;
};

class Vfs {
 public:
  /// Creates a filesystem containing only "/" (owned by root, mode 0755).
  Vfs();

  // -- Inode access ---------------------------------------------------------
  Inode& inode(Ino ino);
  const Inode& inode(Ino ino) const;
  bool exists(Ino ino) const { return inodes_.contains(ino); }

  // -- Namespace setup (no permission checks; used by world builders) -------
  /// mkdir -p: creates intermediate directories as root/0755.
  Ino mkdirs(std::string_view path);
  /// Create (or replace) a regular file with the given metadata and data.
  Ino add_file(std::string_view path, FileMeta meta, std::string data = {});
  /// Create a character device (e.g. /dev/mem).
  Ino add_device(std::string_view path, FileMeta meta, std::string tag);

  // -- Permission-checked operations (errno semantics) ----------------------
  /// Resolve `path` to an inode, checking search permission on every
  /// directory along the way.
  SysResult resolve(const Actor& a, std::string_view path) const;
  /// Resolve everything but the final component.
  SysResult resolve_parent(const Actor& a, std::string_view path,
                           std::string* leaf) const;

  /// Unlink `path`: parent write+search plus sticky-bit rules.
  SysResult unlink(const Actor& a, std::string_view path);
  /// Rename `from` to `to` (same checks on both parents; replaces target).
  SysResult rename(const Actor& a, std::string_view from, std::string_view to);
  /// Create a regular file owned by the actor's euid/egid.
  SysResult create(const Actor& a, std::string_view path, Mode mode);
  /// Add a second name for an existing inode (link(2) semantics: write+
  /// search on the new name's directory; directories cannot be linked).
  SysResult link(const Actor& a, std::string_view existing,
                 std::string_view neu);

  /// Lookup ignoring permissions (for stat-style queries and tests).
  std::optional<Ino> lookup(std::string_view path) const;
  /// Reconstruct a path for an inode (first match; for diagnostics).
  std::string path_of(Ino ino) const;

  /// Number of inodes (including the root directory).
  std::size_t inode_count() const { return inodes_.size(); }

 private:
  Ino alloc(InodeType type, FileMeta meta);
  static std::vector<std::string> components(std::string_view path);

  std::map<Ino, Inode> inodes_;
  Ino next_ino_ = kRootIno;
};

}  // namespace pa::os
