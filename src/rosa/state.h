// ROSA (Rewrite of Objects for Syscall Analysis) — system state.
//
// Exactly the paper's object model: a Linux system is a set of objects —
// processes, files, directory entries, TCP sockets, plus user and group
// objects that bound the values wildcard uid/gid arguments may take. The
// original is written in Object Maude; here the same configuration is a C++
// value type explored by an explicit-state search (rosa/search.h), with
// syscall messages carried as a consumed-once bitmask.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "caps/credentials.h"
#include "os/access.h"

namespace pa::rosa {

/// Process object: credentials, run state, and the sets of object ids the
/// process has opened for reading (rdfset) and writing (wrfset).
struct ProcObj {
  int id = 0;
  caps::IdTriple uid;
  caps::IdTriple gid;
  std::vector<caps::Gid> supplementary;
  bool running = true;
  std::set<int> rdfset;
  std::set<int> wrfset;

  bool operator==(const ProcObj&) const = default;

  caps::Credentials creds() const {
    // set_supplementary() sorts and dedups, so the groups must not also be
    // passed to the constructor (which would copy + normalize them twice).
    caps::Credentials c{uid, gid, {}};
    c.set_supplementary(supplementary);
    return c;
  }
};

/// File object: ownership and permissions; `name` is human-readable only
/// (rewrite rules never consult it), exactly as in the paper.
struct FileObj {
  int id = 0;
  std::string name;
  os::FileMeta meta;

  bool operator==(const FileObj&) const = default;
};

/// Directory-entry object: like a file plus an `inode` attribute naming the
/// file object the entry refers to (-1 = dangling/removed). ROSA models
/// pathname lookup on a single parent directory.
struct DirObj {
  int id = 0;
  std::string name;
  os::FileMeta meta;
  int inode = -1;

  bool operator==(const DirObj&) const = default;
};

/// TCP socket object.
struct SockObj {
  int id = 0;
  int owner_proc = -1;
  int port = -1;  // -1 = unbound

  bool operator==(const SockObj&) const = default;
};

/// A ROSA configuration. Object vectors are kept sorted by id so that equal
/// configurations serialize identically (canonical form for search dedup).
struct State {
  std::vector<ProcObj> procs;
  std::vector<FileObj> files;
  std::vector<DirObj> dirs;
  std::vector<SockObj> socks;
  /// User / group objects: the uid and gid pools wildcard arguments draw
  /// from (constraining these bounds the search space, §V-B).
  std::vector<int> users;
  std::vector<int> groups;
  /// Bitmask over the query's message list: 1 = still consumable.
  std::uint64_t msgs_remaining = 0;

  bool operator==(const State&) const = default;

  ProcObj* find_proc(int id);
  const ProcObj* find_proc(int id) const;
  FileObj* find_file(int id);
  const FileObj* find_file(int id) const;
  DirObj* find_dir(int id);
  const DirObj* find_dir(int id) const;
  SockObj* find_sock(int id);
  const SockObj* find_sock(int id) const;

  /// The directory entry whose inode refers to `file_id`, or nullptr.
  const DirObj* parent_dir_of(int file_id) const;

  /// True if some socket is bound to `port`.
  bool port_in_use(int port) const;

  /// Smallest object id not in use (for socket creation).
  int next_object_id() const;

  /// Keep object vectors sorted by id; call after construction.
  void normalize();

  /// Deterministic serialization — the reference dedup key. The search now
  /// keys its seen-set on hash() and falls back to canonical_equal() on
  /// collisions; canonical() remains the ground truth those two must match
  /// (tests/rosa_hash_test.cpp).
  std::string canonical() const;

  /// 64-bit FNV-1a over exactly the fields canonical() serializes, without
  /// materializing the string. Guarantees: canonical()-equal states hash
  /// equal; distinct canonical forms collide only by hash accident, which
  /// the search resolves via canonical_equal().
  std::uint64_t hash() const;

  /// Multi-line rendering in a Maude-like object syntax (for reports and
  /// the worked example).
  std::string to_string() const;
};

/// Field-by-field comparison of exactly the canonical() projection:
/// equivalent to a.canonical() == b.canonical() but with no allocation.
/// (Unlike operator==, ignores display names and the immutable user/group
/// pools, just as canonical() does.)
bool canonical_equal(const State& a, const State& b);

}  // namespace pa::rosa
