; PrivLint fixture: seeded unused-privilege-epoch defect (and nothing else).
; The epoch raises CapChown but only reads and writes between the raise and
; the lower — no syscall in the region consults CapChown, so the raise is
; pure exposure (the static analogue of ROSA marking a privilege unused).
;
; !name: unused_epoch
; !description: lint fixture - epoch raises a capability nothing can use
; !permitted: CapChown
; !uid: 1000
; !gid: 1000

func @main(0) {
entry:
  %0 = syscall open("/tmp/scratch", 2)
  priv_raise {CapChown}
  %1 = syscall read(%0, 64)
  %2 = syscall write(%0, 64)
  priv_lower {CapChown}
  %3 = syscall close(%0)
  exit 0
}
