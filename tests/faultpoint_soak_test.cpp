// The fault-injection harness (support/faultpoint.h) and the soak test the
// robustness layer is built around: arm every registered fault point, one at
// a time, run the full load -> AutoPriv -> ChronoPriv -> ROSA pipeline, and
// require that it never crashes, never hangs, and always surfaces a
// structured diagnostic on the failed ProgramAnalysis.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "privanalyzer/pipeline.h"
#include "support/faultpoint.h"
#include "support/thread_pool.h"

namespace pa {
namespace {

using support::FaultInjected;
namespace fp = support::faultpoint;

class FaultPointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::disarm_all(); }
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(FaultPointTest, InertWhenUnarmed) {
  EXPECT_NO_THROW(fp::hit("rosa.search"));
  EXPECT_NO_THROW(fp::hit("never.registered"));
}

TEST_F(FaultPointTest, FiresOnceThenDisarms) {
  fp::arm("test.point");
  EXPECT_TRUE(fp::armed("test.point"));
  EXPECT_THROW(fp::hit("test.point"), FaultInjected);
  EXPECT_FALSE(fp::armed("test.point"));
  EXPECT_NO_THROW(fp::hit("test.point"));
}

TEST_F(FaultPointTest, FiresOnNthHitDeterministically) {
  fp::arm("test.nth", 3);
  EXPECT_NO_THROW(fp::hit("test.nth"));
  EXPECT_NO_THROW(fp::hit("test.nth"));
  EXPECT_THROW(fp::hit("test.nth"), FaultInjected);
}

TEST_F(FaultPointTest, CarriesStructuredDiagnostic) {
  fp::arm("rosa.search");
  try {
    fp::hit("rosa.search");
    FAIL() << "armed point did not fire";
  } catch (const FaultInjected& e) {
    EXPECT_EQ(e.point(), "rosa.search");
    EXPECT_EQ(e.diagnostic().stage, support::Stage::Rosa);
    EXPECT_EQ(e.diagnostic().code, support::DiagCode::FaultInjected);
    EXPECT_NE(std::string(e.what()).find("rosa.search"), std::string::npos);
  }
}

TEST_F(FaultPointTest, RegistryListsEveryCompiledInPoint) {
  std::vector<std::string> points = fp::registered_points();
  for (const char* expected :
       {"loader.load_program", "verifier.verify", "world.make",
        "thread_pool.task", "rosa.search", "rosa.cache_load",
        "rosa.cache_store", "rosa.spill_io", "daemon.accept", "daemon.read",
        "daemon.write"})
    EXPECT_NE(std::find(points.begin(), points.end(), expected), points.end())
        << expected;
}

TEST_F(FaultPointTest, ArmsFromEnvironment) {
  ASSERT_EQ(setenv("PA_FAULTPOINTS", "test.env:2, test.other", 1), 0);
  EXPECT_EQ(fp::arm_from_env(), 2);
  EXPECT_TRUE(fp::armed("test.env"));
  EXPECT_TRUE(fp::armed("test.other"));
  EXPECT_NO_THROW(fp::hit("test.env"));  // armed for the 2nd hit
  EXPECT_THROW(fp::hit("test.env"), FaultInjected);
  EXPECT_THROW(fp::hit("test.other"), FaultInjected);
  unsetenv("PA_FAULTPOINTS");
}

TEST_F(FaultPointTest, RejectsMalformedEnvCounts) {
  ASSERT_EQ(setenv("PA_FAULTPOINTS", "test.bad:banana", 1), 0);
  EXPECT_THROW(fp::arm_from_env(), Error);
  unsetenv("PA_FAULTPOINTS");
}

// --- The soak test ---------------------------------------------------------

const char* kProgram = R"(
; !name: soakdemo
; !permitted: CapSetuid
; !args: 3, 4
func @main(2) {
entry:
  %2 = add %0, %1
  ret %2
}
)";

std::string write_soak_program() {
  std::string path = ::testing::TempDir() + "/soakdemo.pir";
  std::ofstream out(path);
  out << kProgram;
  return path;
}

TEST_F(FaultPointTest, SoakEveryPointIsolatedAndDiagnosed) {
  const std::string path = write_soak_program();
  privanalyzer::PipelineOptions opts;
  opts.rosa_limits.max_states = 10'000;
  // Force the thread-pool path so the task-boundary point is exercised (the
  // pool is only spun up for multi-threaded matrices).
  opts.rosa_threads = 2;
  // A persistent cache file makes the pipeline reach rosa.cache_load (a
  // missing file is a clean cold start, so the unarmed runs stay warning-free).
  // Remove any leftover from a previous run first: a warm cache would satisfy
  // the whole query matrix without ever reaching the armed rosa.search point.
  opts.rosa_cache_file = ::testing::TempDir() + "/soakdemo.rosa-cache";
  std::remove(opts.rosa_cache_file.c_str());
  // Spill-enabled limits make every search construct a SpillStore, whose
  // eager directory creation is the first rosa.spill_io site — reachable
  // even for this syscall-free program's zero-successor searches. Spilling
  // preserves verdicts, so the unarmed runs behave as before.
  opts.rosa_limits.spill_dir = ::testing::TempDir();
  opts.rosa_limits.max_bytes = 1;

  for (const std::string& point : fp::registered_points()) {
    SCOPED_TRACE(point);
    // The daemon.* points sit on privanalyzerd's socket paths, which the
    // one-shot pipeline never touches; tests/daemon_soak_test.cpp arms them
    // under live client connections instead.
    if (point.starts_with("daemon.")) continue;
    fp::arm(point);
    privanalyzer::ProgramAnalysis a =
        privanalyzer::try_analyze_file(path, opts);
    if (point == "rosa.cache_store") {
      // Recoverable by design: one injected fault costs one persistent-file
      // I/O attempt, the bounded-backoff retry succeeds, and the analysis
      // completes clean (the point still fired — single-shot disarm).
      EXPECT_EQ(a.status, privanalyzer::AnalysisStatus::Ok);
      EXPECT_TRUE(a.diagnostics.empty());
      EXPECT_FALSE(fp::armed(point)) << "point never reached by the pipeline";
      // Drop the retried save's cache file so later iterations stay cold.
      std::remove(opts.rosa_cache_file.c_str());
      fp::disarm_all();
      continue;
    }
    // No crash (we are here), no hang (ctest would time out), and the
    // failure surfaced as a structured diagnostic naming the point.
    EXPECT_EQ(a.status, privanalyzer::AnalysisStatus::Failed);
    ASSERT_FALSE(a.diagnostics.empty());
    EXPECT_EQ(a.diagnostics[0].code, support::DiagCode::FaultInjected);
    EXPECT_NE(a.diagnostics[0].message.find(point), std::string::npos);
    // The armed point actually fired (single-shot arming disarms on fire).
    EXPECT_FALSE(fp::armed(point)) << "point never reached by the pipeline";
    fp::disarm_all();
  }

  // Sanity: with nothing armed the same pipeline succeeds.
  privanalyzer::ProgramAnalysis clean =
      privanalyzer::try_analyze_file(path, opts);
  EXPECT_EQ(clean.status, privanalyzer::AnalysisStatus::Ok);
  EXPECT_TRUE(clean.diagnostics.empty());
  EXPECT_EQ(clean.exit_code, 7);
}

// A worker-thread fault must be captured by the pool and surface on the
// caller, exactly like a task's own exception — never std::terminate.
TEST_F(FaultPointTest, ThreadPoolTaskFaultSurfacesOnCaller) {
  fp::arm("thread_pool.task");
  support::ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) pool.submit([] {});
  EXPECT_THROW(pool.wait_idle(), FaultInjected);
  // The pool stays usable afterwards.
  int ran = 0;
  std::mutex mu;
  for (int i = 0; i < 4; ++i)
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++ran;
    });
  pool.wait_idle();
  EXPECT_EQ(ran, 4);
}

}  // namespace
}  // namespace pa
