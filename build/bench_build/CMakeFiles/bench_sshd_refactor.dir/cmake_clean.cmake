file(REMOVE_RECURSE
  "../bench/bench_sshd_refactor"
  "../bench/bench_sshd_refactor.pdb"
  "CMakeFiles/bench_sshd_refactor.dir/bench_sshd_refactor.cpp.o"
  "CMakeFiles/bench_sshd_refactor.dir/bench_sshd_refactor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sshd_refactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
