// Differential test for the fused multi-goal engine (rosa::detail::
// search_fused, reached through rosa::run_queries' world-signature
// grouping): one shared exploration answering all four attacks of an epoch
// must be indistinguishable — bit for bit — from four standalone searches.
// The full Table-III matrix is diffed fused-vs-unfused at search_threads
// ∈ {1, 4}, cached and uncached, reductions on and off, down to the
// counters the goldens deliberately omit (peak_bytes, state_bytes,
// decisive_states). Fused witnesses must replay on the SimOS kernel, a
// mixed-attacker batch must NOT fuse across world signatures, spilling
// must disable fusion entirely, and the escalation ladder must re-run only
// still-undecided goals.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "privanalyzer/efficacy.h"
#include "rosa/cache.h"
#include "rosa/replay.h"
#include "rosa_test_util.h"

namespace pa {
namespace {

using attacks::AttackId;
using rosa_test::Matrix;

/// Everything except wall time and the cache/fused observability counters.
void expect_identical_runs(const rosa::SearchResult& unfused,
                           const rosa::SearchResult& fused) {
  rosa_test::expect_same_work(unfused, fused);
  EXPECT_EQ(unfused.stats.peak_bytes, fused.stats.peak_bytes);
  EXPECT_EQ(unfused.stats.state_bytes, fused.stats.state_bytes);
  EXPECT_EQ(unfused.stats.decisive_states, fused.stats.decisive_states);
  EXPECT_EQ(unfused.stats.spilled_states, fused.stats.spilled_states);
  EXPECT_EQ(unfused.stats.spill_bytes, fused.stats.spill_bytes);
}

void expect_fused_matches_unfused(unsigned search_threads, bool cached,
                                  bool reduction) {
  const Matrix m = rosa_test::build_matrix();

  rosa::SearchLimits limits = rosa_test::table3_limits();
  limits.search_threads = search_threads;
  limits.reduction = reduction;

  rosa::SearchLimits unfused_limits = limits;
  unfused_limits.fused = false;
  const std::vector<rosa::SearchResult> reference =
      rosa::run_queries(m.queries, unfused_limits, /*n_threads=*/1, {},
                        nullptr);

  rosa::QueryCache cache;
  const std::vector<rosa::SearchResult> fused =
      rosa::run_queries(m.queries, limits, /*n_threads=*/1, {},
                        cached ? &cache : nullptr);

  ASSERT_EQ(fused.size(), reference.size());
  std::size_t searches_saved = 0;
  std::size_t world_states = 0;
  std::size_t standalone_states = 0;
  for (std::size_t i = 0; i < fused.size(); ++i) {
    SCOPED_TRACE(m.labels[i]);
    expect_identical_runs(reference[i], fused[i]);
    searches_saved += fused[i].stats.fused_searches_saved;
    world_states += fused[i].stats.fused_world_states;
    standalone_states += fused[i].stats.states;
  }
  // The matrix's 96 queries collapse to well under the acceptance bound of
  // 30 distinct explorations: at least 50 whole searches are fanned in. The
  // state reduction floor is structural — bit-identity pins each member's
  // replayed count, so the shared exploration costs exactly the union of the
  // members' decisive prefixes (measured 1.8x on this matrix; asserted at
  // 1.5x for headroom).
  if (!cached) {
    EXPECT_GE(searches_saved, 50u);
    EXPECT_LE(3 * world_states, 2 * standalone_states);
  }
}

TEST(FusedDiffTest, SerialUncachedMatchesUnfused) {
  expect_fused_matches_unfused(1, false, false);
}

TEST(FusedDiffTest, SerialCachedMatchesUnfused) {
  expect_fused_matches_unfused(1, true, false);
}

TEST(FusedDiffTest, FourWorkerUncachedMatchesUnfused) {
  expect_fused_matches_unfused(4, false, false);
}

TEST(FusedDiffTest, FourWorkerCachedMatchesUnfused) {
  expect_fused_matches_unfused(4, true, false);
}

TEST(FusedDiffTest, SerialReducedMatchesUnfusedReduced) {
  expect_fused_matches_unfused(1, false, true);
}

TEST(FusedDiffTest, FourWorkerReducedMatchesUnfusedReduced) {
  expect_fused_matches_unfused(4, false, true);
}

// Fused witnesses are not just string-identical to the standalone ones —
// they execute on the SimOS kernel and land in the goal state, like every
// other witness (witness_replay_test.cpp).
TEST(FusedDiffTest, FusedWitnessesReplayOnKernel) {
  const Matrix m = rosa_test::build_matrix();
  const rosa::SearchLimits limits = rosa_test::table3_limits();
  const std::vector<rosa::SearchResult> results =
      rosa::run_queries(m.queries, limits, /*n_threads=*/1, {}, nullptr);

  const auto& attacks_list = attacks::modeled_attacks();
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].verdict != rosa::Verdict::Reachable) continue;
    SCOPED_TRACE(m.labels[i]);
    rosa::Materialized world(m.queries[i].initial);
    std::string diag;
    ASSERT_TRUE(world.replay(results[i].witness, &diag)) << diag;
    switch (attacks_list[i % attacks_list.size()].id) {
      case AttackId::ReadDevMem:
        EXPECT_TRUE(world.holds_open(attacks::kVictimProc,
                                     attacks::kDevMemFile, false));
        break;
      case AttackId::WriteDevMem:
        EXPECT_TRUE(world.holds_open(attacks::kVictimProc,
                                     attacks::kDevMemFile, true));
        break;
      case AttackId::BindPrivilegedPort:
        EXPECT_TRUE(world.has_privileged_bind(attacks::kVictimProc));
        break;
      case AttackId::KillServer:
        EXPECT_TRUE(world.is_terminated(attacks::kServerProc));
        break;
    }
    ++replayed;
  }
  EXPECT_GT(replayed, 0u);
}

attacks::ScenarioInput handmade_epoch(rosa::AttackerModel attacker) {
  attacks::ScenarioInput in;
  in.permitted = {caps::Capability::Setuid, caps::Capability::Setgid,
                  caps::Capability::NetBindService};
  in.creds = caps::Credentials::of_user(1000, 1000);
  in.syscalls = {"open", "chown", "setuid", "setgid",
                 "kill", "socket", "bind"};
  in.attacker = attacker;
  return in;
}

// A batch mixing attacker models: each model's four attacks share a world
// signature and fuse, but nothing fuses ACROSS the models — the attacker
// is part of the world, so a group spanning both would explore transitions
// one member's model forbids.
TEST(FusedDiffTest, MixedAttackerBatchFusesOnlyWithinWorlds) {
  std::vector<rosa::Query> queries;
  for (rosa::AttackerModel model :
       {rosa::AttackerModel::Full, rosa::AttackerModel::CfiOrdered}) {
    const attacks::ScenarioInput in = handmade_epoch(model);
    for (const attacks::AttackInfo& a : attacks::modeled_attacks())
      queries.push_back(attacks::build_attack_query(a.id, in));
  }

  rosa::SearchLimits limits = rosa_test::table3_limits();
  rosa::SearchLimits unfused_limits = limits;
  unfused_limits.fused = false;
  const std::vector<rosa::SearchResult> reference =
      rosa::run_queries(queries, unfused_limits, 1, {}, nullptr);
  const std::vector<rosa::SearchResult> fused =
      rosa::run_queries(queries, limits, 1, {}, nullptr);

  ASSERT_EQ(fused.size(), 8u);
  std::size_t saved = 0;
  for (std::size_t i = 0; i < fused.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical_runs(reference[i], fused[i]);
    // Four goals per world, never eight: no group crosses attacker models.
    EXPECT_EQ(fused[i].stats.fused_group_size, 4u);
    saved += fused[i].stats.fused_searches_saved;
  }
  EXPECT_EQ(saved, 6u);  // two groups, each fanning 4 goals into 1 search
}

// Spilling is frontier-order-dependent in ways the per-member replay does
// not model, so spill-enabled limits opt out of fusion wholesale.
TEST(FusedDiffTest, SpillEnabledLimitsDoNotFuse) {
  const attacks::ScenarioInput in =
      handmade_epoch(rosa::AttackerModel::Full);
  std::vector<rosa::Query> queries;
  for (const attacks::AttackInfo& a : attacks::modeled_attacks())
    queries.push_back(attacks::build_attack_query(a.id, in));

  rosa::SearchLimits limits = rosa_test::table3_limits();
  limits.spill_dir = ::testing::TempDir();
  limits.max_bytes = std::size_t{1} << 30;  // never actually spills
  ASSERT_TRUE(limits.spill_enabled());

  const std::vector<rosa::SearchResult> results =
      rosa::run_queries(queries, limits, 1, {}, nullptr);
  for (const rosa::SearchResult& r : results) {
    EXPECT_EQ(r.stats.fused_group_size, 0u);
    EXPECT_EQ(r.stats.fused_searches_saved, 0u);
    EXPECT_EQ(r.stats.fused_world_states, 0u);
  }
}

// Escalation regression: two goals over one shared world, where one decides
// in the base round and the other needs multiple escalation rounds. The
// ladder must re-run only the still-undecided goal, and every accumulated
// counter must match the standalone escalating searches.
TEST(FusedDiffTest, EscalationRerunsOnlyUndecidedGoals) {
  // One world: proc 1 may open each of 3 files (2^3 reachable states). Both
  // goals touch only proc 1's fd table, so the queries share an independence
  // table and fuse; a goal with a different POR footprint (say,
  // goal_proc_terminated) would land in its own group by design.
  rosa::Query fast = rosa_test::open_query(
      3, 0600, rosa::goal_file_in_rdfset(1, 2));  // decided at 2 states
  rosa::Query slow = rosa_test::open_query(
      3, 0600,
      rosa::goal_and(rosa::goal_and(rosa::goal_file_in_rdfset(1, 2),
                                    rosa::goal_file_in_rdfset(1, 3)),
                     rosa::goal_file_in_rdfset(1, 4)));  // the last state
  const rosa::SearchLimits limits = rosa_test::states_budget(2);
  const rosa::EscalationPolicy policy{/*rounds=*/4, /*factor=*/2.0};

  const rosa::SearchResult fast_ref =
      rosa::search_escalating(fast, limits, policy);
  const rosa::SearchResult slow_ref =
      rosa::search_escalating(slow, limits, policy);
  ASSERT_EQ(fast_ref.verdict, rosa::Verdict::Reachable);
  ASSERT_EQ(slow_ref.verdict, rosa::Verdict::Reachable);
  EXPECT_EQ(fast_ref.stats.escalations, 0u);
  EXPECT_GE(slow_ref.stats.escalations, 2u);

  const std::vector<rosa::Query> group = {fast, slow};
  const std::vector<rosa::SearchResult> fused =
      rosa::detail::search_fused_escalating(group, limits, policy);
  ASSERT_EQ(fused.size(), 2u);
  expect_identical_runs(fast_ref, fused[0]);
  expect_identical_runs(slow_ref, fused[1]);

  // And through the public batch API, which routes the pair into one group.
  const std::vector<rosa::SearchResult> batch =
      rosa::run_queries(group, limits, 1, policy, nullptr);
  ASSERT_EQ(batch.size(), 2u);
  expect_identical_runs(fast_ref, batch[0]);
  expect_identical_runs(slow_ref, batch[1]);
  EXPECT_EQ(batch[0].stats.fused_group_size, 2u);
}

// Fused and unfused pipelines agree on every verdict cell and vulnerable
// fraction — the paper-facing numbers, not just the engine counters.
TEST(FusedDiffTest, PipelineFractionsMatchUnfused) {
  privanalyzer::PipelineOptions fused_opts;
  fused_opts.rosa_limits = rosa_test::table3_limits();
  fused_opts.rosa_threads = 1;
  privanalyzer::PipelineOptions unfused_opts = fused_opts;
  unfused_opts.rosa_limits.fused = false;

  const std::vector<privanalyzer::ProgramAnalysis> fused =
      privanalyzer::analyze_baseline(fused_opts);
  const std::vector<privanalyzer::ProgramAnalysis> unfused =
      privanalyzer::analyze_baseline(unfused_opts);
  ASSERT_EQ(fused.size(), unfused.size());
  for (std::size_t p = 0; p < fused.size(); ++p) {
    SCOPED_TRACE(fused[p].program);
    ASSERT_EQ(fused[p].verdicts.size(), unfused[p].verdicts.size());
    for (std::size_t e = 0; e < fused[p].verdicts.size(); ++e)
      for (std::size_t a = 0; a < fused[p].verdicts[e].verdicts.size(); ++a)
        EXPECT_EQ(fused[p].verdicts[e].verdicts[a],
                  unfused[p].verdicts[e].verdicts[a]);
    for (std::size_t a = 0; a < 4; ++a)
      EXPECT_DOUBLE_EQ(fused[p].vulnerable_fraction(a),
                       unfused[p].vulnerable_fraction(a));
  }
}

}  // namespace
}  // namespace pa
