// SimOS task state: credentials, capability sets, the file-descriptor table,
// and signal bookkeeping.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "caps/priv_state.h"
#include "os/vfs.h"

namespace pa::os {

using Pid = int;
using Fd = int;

/// open(2) flag bits (subset SimOS models).
struct OpenFlags {
  static constexpr unsigned kRead = 1;
  static constexpr unsigned kWrite = 2;
  static constexpr unsigned kCreate = 4;
  static constexpr unsigned kTrunc = 8;
};

/// An open-file-table entry; either a VFS inode or a socket.
struct OpenFile {
  Ino ino = kNoIno;
  int socket_id = -1;
  unsigned flags = 0;
  std::size_t offset = 0;

  bool is_socket() const { return socket_id >= 0; }
};

enum class ProcState { Running, Zombie };

/// Standard signal numbers SimOS knows about.
inline constexpr int kSigHup = 1;
inline constexpr int kSigKill = 9;
inline constexpr int kSigTerm = 15;
inline constexpr int kSigChld = 17;

struct Process {
  Pid pid = 0;
  std::string name;
  ProcState state = ProcState::Running;
  int exit_code = 0;

  caps::Credentials creds;
  caps::PrivState privs;

  std::map<Fd, OpenFile> fds;
  Fd next_fd = 3;  // 0-2 reserved for std streams

  /// File-creation mask (umask(2)); applied to modes of created files.
  Mode umask{0022};

  /// chroot(2) target; path resolution below this is not modelled (SimOS
  /// records the jail for reporting and capability-check purposes).
  Ino root = kRootIno;

  /// signo -> handler name (an IR function for VM-run processes).
  std::map<int, std::string> signal_handlers;
  /// Signals delivered but not yet consumed by the VM.
  std::vector<int> pending_signals;

  bool alive() const { return state == ProcState::Running; }
};

}  // namespace pa::os
