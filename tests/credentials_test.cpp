// Unit tests for the Linux credential-changing rules (caps/credentials.h):
// setuid / seteuid / setresuid semantics with and without privilege.
#include <gtest/gtest.h>

#include "caps/credentials.h"

namespace pa::caps {
namespace {

TEST(SetuidTest, PrivilegedSetsAllThree) {
  IdTriple t{1000, 1000, 1000};
  EXPECT_EQ(apply_setuid(t, 0, /*privileged=*/true), CredChange::Ok);
  EXPECT_EQ(t, (IdTriple{0, 0, 0}));
}

TEST(SetuidTest, UnprivilegedOnlyRealOrSaved) {
  IdTriple t{1000, 999, 1001};
  EXPECT_EQ(apply_setuid(t, 1000, false), CredChange::Ok);
  EXPECT_EQ(t.effective, 1000);
  EXPECT_EQ(t.real, 1000);  // real and saved untouched
  EXPECT_EQ(t.saved, 1001);

  EXPECT_EQ(apply_setuid(t, 1001, false), CredChange::Ok);
  EXPECT_EQ(t.effective, 1001);

  EXPECT_EQ(apply_setuid(t, 0, false), CredChange::Eperm);
}

TEST(SetuidTest, NegativeIdIsEinval) {
  IdTriple t{1000, 1000, 1000};
  EXPECT_EQ(apply_setuid(t, -5, true), CredChange::Einval);
  EXPECT_EQ(t, (IdTriple{1000, 1000, 1000}));
}

TEST(SeteuidTest, PrivilegedSetsOnlyEffective) {
  IdTriple t{1000, 1000, 1000};
  EXPECT_EQ(apply_seteuid(t, 0, true), CredChange::Ok);
  EXPECT_EQ(t, (IdTriple{1000, 0, 1000}));
}

TEST(SeteuidTest, UnprivilegedToRealOrSaved) {
  IdTriple t{1000, 998, 1001};
  EXPECT_EQ(apply_seteuid(t, 1001, false), CredChange::Ok);
  EXPECT_EQ(t.effective, 1001);
  EXPECT_EQ(apply_seteuid(t, 998, false), CredChange::Eperm);  // 998 left e
}

TEST(SetresuidTest, MinusOneKeepsField) {
  IdTriple t{1000, 998, 1001};
  EXPECT_EQ(apply_setresuid(t, -1, 1001, -1, false), CredChange::Ok);
  EXPECT_EQ(t, (IdTriple{1000, 1001, 1001}));
}

TEST(SetresuidTest, UnprivilegedFieldsMustComeFromCurrentIds) {
  IdTriple t{1000, 998, 1001};
  // Every value in {1000, 998, 1001} is allowed in any slot.
  EXPECT_EQ(apply_setresuid(t, 1001, 1001, 1001, false), CredChange::Ok);
  EXPECT_EQ(t, (IdTriple{1001, 1001, 1001}));
  // After the switch, 998 is gone for good without privilege.
  EXPECT_EQ(apply_setresuid(t, -1, 998, -1, false), CredChange::Eperm);
}

TEST(SetresuidTest, PrivilegedIsUnconstrained) {
  IdTriple t{1000, 1000, 1000};
  EXPECT_EQ(apply_setresuid(t, 1, 2, 3, true), CredChange::Ok);
  EXPECT_EQ(t, (IdTriple{1, 2, 3}));
}

TEST(SetresuidTest, FailureLeavesTripleUntouched) {
  IdTriple t{1000, 998, 1001};
  EXPECT_EQ(apply_setresuid(t, 0, -1, -1, false), CredChange::Eperm);
  EXPECT_EQ(t, (IdTriple{1000, 998, 1001}));
}

TEST(SetgroupsTest, RequiresPrivilege) {
  Credentials c = Credentials::of_user(1000, 1000);
  EXPECT_EQ(apply_setgroups(c, {4, 24, 27}, false), CredChange::Eperm);
  EXPECT_EQ(apply_setgroups(c, {4, 24, 27}, true), CredChange::Ok);
  EXPECT_TRUE(c.in_group(24));
}

TEST(SetgroupsTest, SortedAndDeduplicated) {
  Credentials c = Credentials::of_user(1000, 1000);
  ASSERT_EQ(apply_setgroups(c, {9, 4, 9, 4}, true), CredChange::Ok);
  EXPECT_EQ(c.supplementary, (std::vector<Gid>{4, 9}));
}

TEST(CredentialsTest, InGroupChecksEffectiveAndSupplementary) {
  Credentials c = Credentials::of_user(1000, 1000);
  EXPECT_TRUE(c.in_group(1000));
  EXPECT_FALSE(c.in_group(15));
  c.set_supplementary({15});
  EXPECT_TRUE(c.in_group(15));
}

TEST(CredentialsTest, TripleMatchesAnyOfThree) {
  IdTriple t{1, 2, 3};
  EXPECT_TRUE(t.matches(1));
  EXPECT_TRUE(t.matches(2));
  EXPECT_TRUE(t.matches(3));
  EXPECT_FALSE(t.matches(4));
}

TEST(CredentialsTest, ToStringFormat) {
  IdTriple t{1000, 998, 1001};
  EXPECT_EQ(t.to_string(), "1000,998,1001");
}

}  // namespace
}  // namespace pa::caps
