// Differential test for the state-representation refactor: the full
// Table-III query matrix (5 programs x epochs x 4 attacks, 96 queries) must
// produce bit-identical fingerprints, verdicts, work counters, witnesses,
// and vulnerable-fractions to the goldens captured from the seed build
// (tests/golden/rosa_table3_seed.txt) — serial and 4-thread, uncached and
// cached. The searches run with SearchLimits::check_hashes, so every
// incrementally maintained digest is cross-checked against a from-scratch
// State::full_hash() along the way.
//
// hash_collisions is deliberately excluded: which distinct states share a
// 64-bit key is a property of the hash function, not of the model, and the
// refactor replaced FNV-over-canonical with incremental XOR hashing.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "privanalyzer/efficacy.h"
#include "rosa/cache.h"
#include "rosa/fingerprint.h"
#include "rosa/query.h"
#include "rosa/search.h"
#include "support/str.h"

namespace pa {
namespace {

struct Golden {
  std::vector<std::string> qlines;     // normalized "q fp verdict ..." lines
  std::vector<std::string> fractions;  // normalized "f program v v v v" lines
};

// Collapse runs of spaces and drop the trailing "# label" comment so lines
// compare on content only.
std::string normalize(const std::string& line) {
  std::istringstream in(line);
  std::string tok, out;
  while (in >> tok) {
    if (tok == "#") break;
    if (!out.empty()) out += ' ';
    out += tok;
  }
  return out;
}

Golden load_golden() {
  const std::string path =
      std::string(PA_SOURCE_DIR) + "/tests/golden/rosa_table3_seed.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing golden file " << path;
  Golden g;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("q ", 0) == 0) g.qlines.push_back(normalize(line));
    if (line.rfind("f ", 0) == 0) g.fractions.push_back(normalize(line));
  }
  return g;
}

struct Matrix {
  std::vector<rosa::Query> queries;
  std::vector<std::string> labels;
};

// The exact construction the seed capture used: every (program, epoch,
// attack) cell of Table III.
Matrix build_matrix() {
  privanalyzer::PipelineOptions chrono_only;
  chrono_only.run_rosa = false;
  std::vector<privanalyzer::ProgramAnalysis> analyses =
      privanalyzer::analyze_baseline(chrono_only);
  std::vector<programs::ProgramSpec> specs =
      programs::all_baseline_programs();

  Matrix m;
  for (std::size_t p = 0; p < specs.size(); ++p) {
    const auto syscalls = specs[p].syscalls_used();
    for (const chronopriv::EpochRow& row : analyses[p].chrono.rows) {
      attacks::ScenarioInput in = attacks::scenario_from_epoch(
          row, syscalls, specs[p].scenario_extra_users,
          specs[p].scenario_extra_groups);
      for (const attacks::AttackInfo& a : attacks::modeled_attacks()) {
        m.queries.push_back(attacks::build_attack_query(a.id, in));
        m.labels.push_back(
            str::cat(specs[p].name, "/", row.name, "/", a.name));
      }
    }
  }
  return m;
}

rosa::SearchLimits table3_limits() {
  rosa::SearchLimits limits;
  limits.max_states = 1'000'000;
  limits.check_hashes = true;  // pin incremental digests to full_hash()
  return limits;
}

std::string render_line(const rosa::Query& q, const rosa::SearchResult& r,
                        const rosa::SearchLimits& limits) {
  const auto fp = rosa::fingerprint_query(q, limits);
  std::string line = str::cat(
      "q ", fp ? fp->to_hex() : std::string("uncacheable"), " ",
      rosa::verdict_name(r.verdict), " ", r.stats.states, " ",
      r.stats.transitions, " ", r.stats.dedup_hits, " ",
      r.stats.peak_frontier, " ", r.witness.size());
  for (const rosa::Action& a : r.witness)
    line += str::cat(" ", a.to_string());
  return line;
}

void expect_matches_golden(unsigned n_threads, bool cached) {
  const Golden golden = load_golden();
  ASSERT_EQ(golden.qlines.size(), 96u) << "golden file out of shape";
  const Matrix m = build_matrix();
  ASSERT_EQ(m.queries.size(), golden.qlines.size());

  const rosa::SearchLimits limits = table3_limits();
  rosa::QueryCache cache;
  std::vector<rosa::SearchResult> results =
      rosa::run_queries(m.queries, limits, n_threads, {},
                        cached ? &cache : nullptr);
  for (std::size_t i = 0; i < m.queries.size(); ++i)
    EXPECT_EQ(render_line(m.queries[i], results[i], limits),
              golden.qlines[i])
        << m.labels[i] << " (threads=" << n_threads
        << " cached=" << cached << ")";
}

TEST(ReprDiffTest, SerialUncachedMatchesSeedGoldens) {
  expect_matches_golden(1, false);
}

TEST(ReprDiffTest, FourThreadUncachedMatchesSeedGoldens) {
  expect_matches_golden(4, false);
}

TEST(ReprDiffTest, SerialCachedMatchesSeedGoldens) {
  expect_matches_golden(1, true);
}

TEST(ReprDiffTest, FourThreadCachedMatchesSeedGoldens) {
  expect_matches_golden(4, true);
}

TEST(ReprDiffTest, VulnerableFractionsMatchSeedGoldens) {
  const Golden golden = load_golden();
  ASSERT_EQ(golden.fractions.size(), 5u) << "golden file out of shape";

  privanalyzer::PipelineOptions full;
  full.rosa_limits = table3_limits();
  full.rosa_threads = 1;
  std::vector<privanalyzer::ProgramAnalysis> analyses =
      privanalyzer::analyze_baseline(full);
  ASSERT_EQ(analyses.size(), golden.fractions.size());
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    const privanalyzer::ProgramAnalysis& a = analyses[i];
    std::string line = str::cat("f ", a.program);
    for (std::size_t atk = 0; atk < 4; ++atk)
      line += str::cat(" ", str::fixed(a.vulnerable_fraction(atk), 6));
    EXPECT_EQ(line, golden.fractions[i]);
  }
}

}  // namespace
}  // namespace pa
