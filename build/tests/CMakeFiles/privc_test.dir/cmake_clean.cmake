file(REMOVE_RECURSE
  "CMakeFiles/privc_test.dir/privc_test.cpp.o"
  "CMakeFiles/privc_test.dir/privc_test.cpp.o.d"
  "privc_test"
  "privc_test.pdb"
  "privc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
