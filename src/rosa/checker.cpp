#include "rosa/checker.h"

namespace pa::rosa {
namespace {

os::Actor actor(const caps::Credentials& creds, caps::CapSet privs) {
  return os::Actor{creds, privs};
}

}  // namespace

bool LinuxChecker::file_access(const caps::Credentials& creds,
                               caps::CapSet privs, const os::FileMeta& meta,
                               os::AccessKind kind) const {
  return os::may_access(actor(creds, privs), meta, kind);
}

bool LinuxChecker::dir_search(const caps::Credentials& creds,
                              caps::CapSet privs,
                              const os::FileMeta& dir) const {
  return os::may_search(actor(creds, privs), dir);
}

bool LinuxChecker::can_chmod(const caps::Credentials& creds,
                             caps::CapSet privs,
                             const os::FileMeta& meta) const {
  return os::may_chmod(actor(creds, privs), meta);
}

bool LinuxChecker::can_chown(const caps::Credentials& creds,
                             caps::CapSet privs, const os::FileMeta& meta,
                             int owner, int group) const {
  return os::may_chown(actor(creds, privs), meta, owner, group);
}

bool LinuxChecker::can_unlink(const caps::Credentials& creds,
                              caps::CapSet privs, const os::FileMeta& dir,
                              const os::FileMeta& victim) const {
  return os::may_unlink(actor(creds, privs), dir, victim);
}

bool LinuxChecker::can_kill(const caps::Credentials& creds,
                            caps::CapSet privs,
                            const caps::IdTriple& victim_uid) const {
  return os::may_kill(actor(creds, privs), victim_uid);
}

bool LinuxChecker::can_bind(const caps::Credentials& creds,
                            caps::CapSet privs, int port) const {
  return os::may_bind_port(actor(creds, privs), port);
}

bool LinuxChecker::can_raw_socket(const caps::Credentials& creds,
                                  caps::CapSet privs) const {
  return os::may_create_raw_socket(actor(creds, privs));
}

bool LinuxChecker::setid_privileged(const caps::Credentials& creds,
                                    caps::CapSet privs, bool is_uid) const {
  (void)creds;
  return privs.contains(is_uid ? caps::Capability::Setuid
                               : caps::Capability::Setgid);
}

const AccessChecker& linux_checker() {
  static const LinuxChecker instance;
  return instance;
}

}  // namespace pa::rosa
