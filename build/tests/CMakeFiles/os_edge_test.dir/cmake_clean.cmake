file(REMOVE_RECURSE
  "CMakeFiles/os_edge_test.dir/os_edge_test.cpp.o"
  "CMakeFiles/os_edge_test.dir/os_edge_test.cpp.o.d"
  "os_edge_test"
  "os_edge_test.pdb"
  "os_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
