#include "ir/value.h"

#include "support/error.h"
#include "support/str.h"

namespace pa::ir {

std::string rt_to_string(const RtValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return "@" + std::get<FuncRef>(v).name;
}

std::int64_t rt_as_int(const RtValue& v) {
  const auto* i = std::get_if<std::int64_t>(&v);
  PA_CHECK(i != nullptr, "runtime value is not an integer");
  return *i;
}

const std::string& rt_as_str(const RtValue& v) {
  const auto* s = std::get_if<std::string>(&v);
  PA_CHECK(s != nullptr, "runtime value is not a string");
  return *s;
}

Operand Operand::reg(int r) {
  Operand o;
  o.kind_ = Kind::Reg;
  o.reg_ = r;
  return o;
}

Operand Operand::imm(std::int64_t v) {
  Operand o;
  o.kind_ = Kind::Int;
  o.ival_ = v;
  return o;
}

Operand Operand::str(std::string s) {
  Operand o;
  o.kind_ = Kind::Str;
  o.sval_ = std::move(s);
  return o;
}

Operand Operand::func(std::string name) {
  Operand o;
  o.kind_ = Kind::Func;
  o.sval_ = std::move(name);
  return o;
}

Operand Operand::capset(caps::CapSet c) {
  Operand o;
  o.kind_ = Kind::Caps;
  o.caps_ = c;
  return o;
}

int Operand::reg_index() const {
  PA_CHECK(kind_ == Kind::Reg, "operand is not a register");
  return reg_;
}

std::int64_t Operand::int_value() const {
  PA_CHECK(kind_ == Kind::Int, "operand is not an integer");
  return ival_;
}

const std::string& Operand::str_value() const {
  PA_CHECK(kind_ == Kind::Str || kind_ == Kind::Func,
           "operand is not a string");
  return sval_;
}

caps::CapSet Operand::caps_value() const {
  PA_CHECK(kind_ == Kind::Caps, "operand is not a capability set");
  return caps_;
}

std::string Operand::to_string() const {
  switch (kind_) {
    case Kind::Reg: return str::cat("%", reg_);
    case Kind::Int: return std::to_string(ival_);
    case Kind::Str: {
      std::string escaped;
      for (char c : sval_) {
        switch (c) {
          case '"': escaped += "\\\""; break;
          case '\\': escaped += "\\\\"; break;
          case '\n': escaped += "\\n"; break;
          case '\t': escaped += "\\t"; break;
          default: escaped += c;
        }
      }
      return str::cat("\"", escaped, "\"");
    }
    case Kind::Func: return str::cat("@", sval_);
    case Kind::Caps: return str::cat("{", caps_.to_string(), "}");
  }
  return "?";
}

}  // namespace pa::ir
