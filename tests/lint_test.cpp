// Tests for the PrivLint pass suite (lint/lint.h): every seeded-defect
// fixture in examples/lint/ fires exactly its own check, the shipped clean
// examples produce zero findings, `!lint-allow:` suppression works end to
// end through the loader, and the render/JSON surfaces agree with the
// reports. Also covers the parse-failure line-number satellite (ir parser →
// loader → Diagnostic).
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "lint/lint.h"
#include "privanalyzer/export.h"
#include "privanalyzer/loader.h"
#include "privanalyzer/pipeline.h"
#include "privanalyzer/render.h"
#include "programs/world.h"

namespace pa {
namespace {

using support::DiagCode;

programs::ProgramSpec load_example(const std::string& rel) {
  return privanalyzer::load_program_file(std::string(PA_SOURCE_DIR) + rel);
}

// ---------------------------------------------------------------------------
// Fixtures: each seeded defect fires its own check and nothing else.

struct FixtureCase {
  const char* file;
  DiagCode code;
  support::Severity severity;
};

TEST(LintFixturesTest, EachFiresExactlyItsOwnCheck) {
  const FixtureCase cases[] = {
      {"/examples/lint/redundant_remove.pir", DiagCode::RedundantPrivRemove,
       support::Severity::Warning},
      {"/examples/lint/never_raised.pir", DiagCode::NeverRaisedPrivilege,
       support::Severity::Warning},
      {"/examples/lint/raise_no_lower.pir", DiagCode::RaiseWithoutLower,
       support::Severity::Error},
      {"/examples/lint/unreachable.pir", DiagCode::UnreachableBlock,
       support::Severity::Warning},
      {"/examples/lint/empty_targets.pir", DiagCode::EmptyIndirectTargets,
       support::Severity::Error},
      {"/examples/lint/unused_epoch.pir", DiagCode::UnusedPrivilegeEpoch,
       support::Severity::Warning},
      {"/examples/lint/overbroad_syscalls.pir",
       DiagCode::OverbroadEpochSyscalls, support::Severity::Warning},
  };
  for (const FixtureCase& c : cases) {
    SCOPED_TRACE(c.file);
    lint::LintReport report = lint::run_lints(load_example(c.file));
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].code, c.code);
    EXPECT_EQ(report.findings[0].severity, c.severity);
    EXPECT_TRUE(report.suppressed.empty());
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.errors() + report.warnings(), 1);
  }
}

TEST(LintFixturesTest, CleanExamplesHaveZeroFindings) {
  for (const char* rel :
       {"/examples/programs/tinyd.pir", "/examples/programs/filesrv.pc",
        "/examples/programs/su.pc"}) {
    SCOPED_TRACE(rel);
    lint::LintReport report = lint::run_lints(load_example(rel));
    EXPECT_TRUE(report.clean()) << report.to_string();
    EXPECT_TRUE(report.suppressed.empty());
  }
}

TEST(LintFixturesTest, RunsOnEveryEvaluationProgram) {
  // The Table-II programs deliberately model the paper's privilege-hygiene
  // defects, so findings are expected — the passes just must not crash or
  // contradict themselves on real program shapes.
  for (const programs::ProgramSpec& spec : programs::all_baseline_programs()) {
    SCOPED_TRACE(spec.name);
    lint::LintReport report = lint::run_lints(spec);
    EXPECT_EQ(report.program, spec.name);
    EXPECT_EQ(static_cast<int>(report.findings.size()),
              report.errors() + report.warnings());
  }
}

// ---------------------------------------------------------------------------
// Suppression and pass selection.

TEST(LintOptionsTest, AllowDirectiveSuppresses) {
  programs::ProgramSpec spec =
      load_example("/examples/lint/redundant_remove.pir");
  spec.lint_allow.insert(DiagCode::RedundantPrivRemove);

  lint::LintReport report = lint::run_lints(spec);
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].code, DiagCode::RedundantPrivRemove);
  EXPECT_NE(report.to_string().find("allowed"), std::string::npos);

  // With the directive ignored, the finding comes back.
  lint::LintOptions raw;
  raw.honor_allow_directive = false;
  lint::LintReport unsuppressed = lint::run_lints(spec, raw);
  ASSERT_EQ(unsuppressed.findings.size(), 1u);
  EXPECT_TRUE(unsuppressed.suppressed.empty());
}

TEST(LintOptionsTest, AllowDirectiveSuppressesOverbroadEpochSyscalls) {
  programs::ProgramSpec spec =
      load_example("/examples/lint/overbroad_syscalls.pir");
  spec.lint_allow.insert(DiagCode::OverbroadEpochSyscalls);
  lint::LintReport report = lint::run_lints(spec);
  EXPECT_TRUE(report.clean()) << report.to_string();
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].code, DiagCode::OverbroadEpochSyscalls);
}

TEST(LintOptionsTest, DisabledPassDoesNotRun) {
  programs::ProgramSpec spec =
      load_example("/examples/lint/redundant_remove.pir");
  lint::LintOptions opts;
  opts.disabled.insert(DiagCode::RedundantPrivRemove);
  EXPECT_TRUE(lint::run_lints(spec, opts).clean());
}

TEST(LintOptionsTest, LoaderParsesAllowDirective) {
  programs::ProgramSpec spec = privanalyzer::load_program(
      "; !name: allowed\n"
      "; !permitted: CapChown\n"
      "; !lint-allow: never-raised-privilege, unused-privilege-epoch\n"
      "func @main(0) {\n"
      "entry:\n"
      "  exit 0\n"
      "}\n");
  EXPECT_TRUE(spec.lint_allow.contains(DiagCode::NeverRaisedPrivilege));
  EXPECT_TRUE(spec.lint_allow.contains(DiagCode::UnusedPrivilegeEpoch));
  // CapChown is never raised, but the program acknowledges it.
  lint::LintReport report = lint::run_lints(spec);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
}

TEST(LintOptionsTest, LoaderRejectsUnknownAllowCode) {
  try {
    privanalyzer::load_program(
        "; !lint-allow: not-a-pass\n"
        "func @main(0) {\nentry:\n  exit 0\n}\n");
    FAIL() << "expected StageError";
  } catch (const support::StageError& e) {
    EXPECT_EQ(e.diagnostic().code, DiagCode::BadFieldValue);
    EXPECT_NE(std::string(e.what()).find("not-a-pass"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The pass registry and the shared diag-code vocabulary.

TEST(LintRegistryTest, PassNamesRoundTripThroughDiagCodes) {
  EXPECT_EQ(lint::lint_passes().size(), 7u);
  for (const lint::LintPassInfo& pass : lint::lint_passes()) {
    EXPECT_EQ(pass.name, support::diag_code_name(pass.code));
    auto parsed = support::parse_diag_code(pass.name);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, pass.code);
  }
  EXPECT_FALSE(support::parse_diag_code("no-such-code").has_value());
}

TEST(LintFindingTest, LocationFormatting) {
  lint::Finding f;
  f.code = DiagCode::RaiseWithoutLower;
  f.severity = support::Severity::Error;
  EXPECT_EQ(f.location(), "<program>");
  f.function = "serve";
  EXPECT_EQ(f.location(), "@serve");
  f.block = 2;
  EXPECT_EQ(f.location(), "@serve.bb2");
  f.instr = 4;
  EXPECT_EQ(f.location(), "@serve.bb2[4]");
  f.message = "leaks";
  f.hint = "lower it";
  EXPECT_EQ(f.to_string(),
            "error [lint/raise-without-lower] @serve.bb2[4]: leaks "
            "(hint: lower it)");
  support::Diagnostic d = f.to_diagnostic("demo");
  EXPECT_EQ(d.stage, support::Stage::Lint);
  EXPECT_EQ(d.code, DiagCode::RaiseWithoutLower);
  EXPECT_EQ(d.program, "demo");
}

// ---------------------------------------------------------------------------
// Render + JSON surfaces.

TEST(LintRenderTest, SummaryLineCountsCleanAndFindings) {
  std::vector<lint::LintReport> reports = {
      lint::run_lints(load_example("/examples/programs/tinyd.pir")),
      lint::run_lints(load_example("/examples/lint/raise_no_lower.pir")),
  };
  std::string text = privanalyzer::render_lint_reports(reports);
  EXPECT_NE(text.find("lint tinyd: clean"), std::string::npos);
  EXPECT_NE(text.find("[lint/raise-without-lower]"), std::string::npos);
  EXPECT_NE(text.find("2 program(s): 1 clean, 1 error(s), 0 warning(s)"),
            std::string::npos);
}

TEST(LintExportTest, JsonCarriesFindingsAndSuppressions) {
  programs::ProgramSpec defect =
      load_example("/examples/lint/redundant_remove.pir");
  programs::ProgramSpec allowed = defect;
  allowed.name = "acknowledged";
  allowed.lint_allow.insert(DiagCode::RedundantPrivRemove);
  std::vector<lint::LintReport> reports = {lint::run_lints(defect),
                                           lint::run_lints(allowed)};
  std::string json = privanalyzer::lint_reports_to_json(reports);
  EXPECT_NE(json.find("\"program\":\"redundant_remove\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"redundant-priv-remove\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"program\":\"acknowledged\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
  // The acknowledged program's finding rides in "suppressed", not findings.
  std::size_t ack = json.find("\"program\":\"acknowledged\"");
  EXPECT_NE(json.find("\"findings\":[]", ack), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipeline integration: lint findings ride along as diagnostics.

TEST(LintPipelineTest, FindingsAttachAsDiagnosticsWithoutFailing) {
  programs::ProgramSpec spec =
      load_example("/examples/lint/redundant_remove.pir");
  privanalyzer::PipelineOptions opts;
  opts.run_rosa = false;
  opts.run_lint = true;
  auto analysis = privanalyzer::try_analyze_program(spec, opts);
  EXPECT_TRUE(analysis.ok());
  bool saw_lint = false;
  for (const support::Diagnostic& d : analysis.diagnostics)
    if (d.stage == support::Stage::Lint &&
        d.code == DiagCode::RedundantPrivRemove)
      saw_lint = true;
  EXPECT_TRUE(saw_lint);
}

// ---------------------------------------------------------------------------
// Satellite: parse failures carry their source line to the diagnostic.

TEST(ParseLineTest, ParserThrowsWithLineNumber) {
  try {
    ir::parse(
        "func @main(0) {\n"
        "entry:\n"
        "  %0 = frobnicate 3\n"
        "}\n");
    FAIL() << "expected ParseError";
  } catch (const ir::ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ParseLineTest, LoaderDiagnosticRendersProgramAndLine) {
  try {
    privanalyzer::load_program(
        "; !name: broken\n"
        "func @main(0) {\n"
        "entry:\n"
        "  %0 = frobnicate 3\n"
        "}\n");
    FAIL() << "expected StageError";
  } catch (const support::StageError& e) {
    EXPECT_EQ(e.diagnostic().code, DiagCode::ParseFailed);
    EXPECT_EQ(e.diagnostic().stage, support::Stage::Loader);
    EXPECT_EQ(e.diagnostic().line, 4);
    EXPECT_NE(e.diagnostic().to_string().find("broken:4:"), std::string::npos);
  }
}

}  // namespace
}  // namespace pa
