// Differential tests for the search reductions (SearchLimits::reduction):
// symmetry canonicalization (rosa/canon.h) and partial-order ample sets
// (rosa/independence.h) may only shrink the explored space — never change a
// verdict, a vulnerable fraction, or the validity of a witness.
//
//  * The full Table-III matrix runs reduced vs. the unreduced reference
//    engine at search_threads ∈ {1, 4}, cached and uncached: identical
//    verdicts everywhere, every Reachable witness replays on the SimOS
//    kernel, and the reduced engine never explores more states.
//  * The pipeline's headline vulnerable_fractions with reduction on must
//    match the seed goldens (which were captured unreduced).
//  * A permutation fuzz proves canonicalize() is a true orbit
//    representative: every consistent renaming of the free wildcard
//    identities lands on the same canonical state and digest.
//  * A pool-heavy workload (the BENCH_rosa reference config) pins the
//    headline win: >= 5x fewer states with bit-identical verdicts.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "rosa/cache.h"
#include "rosa/canon.h"
#include "rosa/replay.h"
#include "rosa_test_util.h"

namespace pa {
namespace {

using caps::Capability;
using rosa_test::Golden;
using rosa_test::Matrix;

rosa::SearchLimits reduced_limits(unsigned search_threads) {
  rosa::SearchLimits limits = rosa_test::table3_limits();
  limits.reduction = true;
  limits.search_threads = search_threads;
  return limits;
}

void expect_reduced_matches(unsigned search_threads, bool cached) {
  const Matrix m = rosa_test::build_matrix();
  const rosa::SearchLimits unreduced = rosa_test::table3_limits();
  const rosa::SearchLimits reduced = reduced_limits(search_threads);

  std::vector<rosa::SearchResult> ref =
      rosa::run_queries(m.queries, unreduced, /*n_threads=*/1);
  rosa::QueryCache cache;
  std::vector<rosa::SearchResult> red = rosa::run_queries(
      m.queries, reduced, /*n_threads=*/1, {}, cached ? &cache : nullptr);

  ASSERT_EQ(ref.size(), red.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    SCOPED_TRACE(m.labels[i] + " threads=" + std::to_string(search_threads) +
                 " cached=" + std::to_string(cached));
    EXPECT_EQ(ref[i].verdict, red[i].verdict);
    EXPECT_LE(red[i].stats.states, ref[i].stats.states);
    if (red[i].verdict == rosa::Verdict::Reachable) {
      // The particular witness may differ under reduction; what must hold
      // is that it executes successfully on the simulated kernel.
      rosa::Materialized world(m.queries[i].initial);
      std::string diag;
      EXPECT_TRUE(world.replay(red[i].witness, &diag)) << diag;
    }
  }
  if (cached) {
    // Second cached pass: hits must return the reduced engine's results.
    std::vector<rosa::SearchResult> hit =
        rosa::run_queries(m.queries, reduced, /*n_threads=*/1, {}, &cache);
    for (std::size_t i = 0; i < red.size(); ++i) {
      SCOPED_TRACE(m.labels[i] + " cached-hit");
      rosa_test::expect_same_work(red[i], hit[i]);
    }
  }
}

TEST(ReductionDiffTest, SerialUncachedMatrixAgreesWithUnreduced) {
  expect_reduced_matches(1, false);
}

TEST(ReductionDiffTest, SerialCachedMatrixAgreesWithUnreduced) {
  expect_reduced_matches(1, true);
}

TEST(ReductionDiffTest, FourWorkerUncachedMatrixAgreesWithUnreduced) {
  expect_reduced_matches(4, false);
}

TEST(ReductionDiffTest, FourWorkerCachedMatrixAgreesWithUnreduced) {
  expect_reduced_matches(4, true);
}

TEST(ReductionDiffTest, LayeredEngineReplaysSerialReducedCountersExactly) {
  // The layered engine must replay the serial reduced engine bit for bit —
  // including the new pruning counters (commit-phase replay).
  const Matrix m = rosa_test::build_matrix();
  std::vector<rosa::SearchResult> serial =
      rosa::run_queries(m.queries, reduced_limits(1), 1);
  std::vector<rosa::SearchResult> layered =
      rosa::run_queries(m.queries, reduced_limits(4), 1);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(m.labels[i]);
    rosa_test::expect_same_work(serial[i], layered[i]);
    EXPECT_EQ(serial[i].stats.peak_bytes, layered[i].stats.peak_bytes);
    EXPECT_EQ(serial[i].stats.state_bytes, layered[i].stats.state_bytes);
  }
}

TEST(ReductionDiffTest, VulnerableFractionsMatchSeedGoldensWithReductionOn) {
  const Golden golden = rosa_test::load_golden();
  ASSERT_EQ(golden.fractions.size(), 5u) << "golden file out of shape";

  privanalyzer::PipelineOptions full;
  full.rosa_limits = reduced_limits(1);
  full.rosa_threads = 1;
  std::vector<privanalyzer::ProgramAnalysis> analyses =
      privanalyzer::analyze_baseline(full);
  ASSERT_EQ(analyses.size(), golden.fractions.size());
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    const privanalyzer::ProgramAnalysis& a = analyses[i];
    std::string line = str::cat("f ", a.program);
    for (std::size_t atk = 0; atk < 4; ++atk)
      line += str::cat(" ", str::fixed(a.vulnerable_fraction(atk), 6));
    EXPECT_EQ(line, golden.fractions[i]);
  }
}

// --- Canonicalization orbit fuzz -------------------------------------------

/// Query with free identities on both pools: proc 1 (uid/gid 1000) may
/// set*id through wildcards and chown a file, so search states can carry
/// any of the free ids in credential and ownership fields.
rosa::Query free_id_query() {
  rosa::Query q;
  rosa::ProcObj p;
  p.id = 1;
  p.uid = {1000, 1000, 1000};
  p.gid = {1000, 1000, 1000};
  q.initial.procs.push_back(p);
  q.initial.files.push_back(rosa::FileObj{2, {1000, 1000, os::Mode(0600)}});
  q.initial.set_name(2, "f");
  q.initial.set_users({1000, 2000, 2001, 2002, 2003});
  q.initial.set_groups({1000, 3000, 3001, 3002, 3003});
  q.initial.normalize();
  q.messages.push_back(
      rosa::msg_setresuid(1, rosa::kWild, rosa::kWild, rosa::kWild,
                          {Capability::Setuid}));
  q.messages.push_back(
      rosa::msg_setresgid(1, rosa::kWild, rosa::kWild, rosa::kWild,
                          {Capability::Setgid}));
  q.messages.push_back(rosa::msg_chown(1, 2, rosa::kWild, rosa::kWild,
                                       {Capability::Chown}));
  q.goal = rosa::goal_file_in_rdfset(1, 2);
  return q;
}

int permuted(const std::vector<int>& pool, const std::vector<int>& image,
             int id) {
  for (std::size_t i = 0; i < pool.size(); ++i)
    if (pool[i] == id) return image[i];
  return id;
}

TEST(ReductionDiffTest, CanonicalizeCollapsesEveryFreeIdPermutation) {
  const rosa::Query q = free_id_query();
  const rosa::SymmetryInfo sym = rosa::compute_symmetry(q);
  ASSERT_TRUE(sym.enabled());
  EXPECT_EQ(sym.free_users, (std::vector<int>{2000, 2001, 2002, 2003}));
  EXPECT_EQ(sym.free_groups, (std::vector<int>{3000, 3001, 3002, 3003}));

  // A state a wildcard-happy path could reach: free ids scattered over the
  // credential triples and the file's ownership.
  rosa::State base = q.initial;
  base.mutate_proc(1, [](rosa::ProcObj& p) {
    p.uid = {2001, 2003, 2000};
    p.gid = {3002, 1000, 3001};
  });
  base.mutate_file(2, [](rosa::FileObj& f) {
    f.meta.owner = 2002;
    f.meta.group = 3003;
  });
  base.set_msgs_remaining(0);

  rosa::State canon_base = base;
  rosa::canonicalize(canon_base, sym);

  std::mt19937 rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> uimg = sym.free_users;
    std::vector<int> gimg = sym.free_groups;
    std::shuffle(uimg.begin(), uimg.end(), rng);
    std::shuffle(gimg.begin(), gimg.end(), rng);

    rosa::State st = base;
    st.mutate_proc(1, [&](rosa::ProcObj& p) {
      p.uid = {permuted(sym.free_users, uimg, p.uid.real),
               permuted(sym.free_users, uimg, p.uid.effective),
               permuted(sym.free_users, uimg, p.uid.saved)};
      p.gid = {permuted(sym.free_groups, gimg, p.gid.real),
               permuted(sym.free_groups, gimg, p.gid.effective),
               permuted(sym.free_groups, gimg, p.gid.saved)};
    });
    st.mutate_file(2, [&](rosa::FileObj& f) {
      f.meta.owner = permuted(sym.free_users, uimg, f.meta.owner);
      f.meta.group = permuted(sym.free_groups, gimg, f.meta.group);
    });
    rosa::canonicalize(st, sym);
    EXPECT_TRUE(rosa::canonical_equal(st, canon_base))
        << "trial " << trial << ": orbit member missed the representative";
    EXPECT_EQ(st.hash(), canon_base.hash()) << "trial " << trial;
  }
}

TEST(ReductionDiffTest, WitnessRenamedBackToOriginalFrameReplays) {
  // Reaching the goal REQUIRES detouring through a free uid: the file's
  // owner bits deny its owner (euid 1000) while the "other" bits admit
  // everyone else, so the witness must contain a renamed set*id step whose
  // argument the reconstruction maps back through the inverse renaming.
  rosa::Query q;
  rosa::ProcObj p;
  p.id = 1;
  p.uid = {1000, 1000, 1000};
  p.gid = {1000, 1000, 1000};
  q.initial.procs.push_back(p);
  // Group 4000 keeps the process out of the file's group class, so a
  // non-owner euid is classified "other" (bits 0004 = readable) while the
  // owner (euid 1000) is denied by the 0-valued owner bits.
  q.initial.files.push_back(rosa::FileObj{2, {1000, 4000, os::Mode(0004)}});
  q.initial.set_name(2, "f");
  q.initial.set_users({1000, 2000, 2001, 2002});
  q.initial.set_groups({1000});
  q.initial.normalize();
  q.messages.push_back(
      rosa::msg_seteuid(1, rosa::kWild, {Capability::Setuid}));
  q.messages.push_back(rosa::msg_open(1, 2, rosa::kAccRead, {}));
  q.goal = rosa::goal_file_in_rdfset(1, 2);

  for (unsigned threads : {1u, 4u}) {
    rosa::SearchLimits limits;
    limits.search_threads = threads;
    const rosa::SearchResult r = rosa::search(q, limits);
    ASSERT_EQ(r.verdict, rosa::Verdict::Reachable);
    ASSERT_EQ(r.witness.size(), 2u);
    EXPECT_GT(r.stats.symmetry_pruned, 0u);
    EXPECT_EQ(r.witness[0].sys, rosa::Sys::Seteuid);
    rosa::Materialized world(q.initial);
    std::string diag;
    EXPECT_TRUE(world.replay(r.witness, &diag)) << diag;
    EXPECT_TRUE(world.holds_open(1, 2, /*for_write=*/false));
  }
}

// --- Headline pruning ratio (the BENCH_rosa reference workload) ------------

TEST(ReductionDiffTest, PoolWorkloadShrinksAtLeastFiveFold) {
  attacks::ScenarioInput in;
  in.permitted = {Capability::Setgid};
  in.creds = caps::Credentials::of_user(1000, 1000);
  in.syscalls = {"setresgid", "open",   "chmod", "chown",
                 "setgid",    "setuid", "unlink"};
  for (int i = 0; i < 6; ++i) {
    in.extra_users.push_back(2000 + i);
    in.extra_groups.push_back(3000 + i);
  }
  const rosa::Query q =
      attacks::build_attack_query(attacks::AttackId::WriteDevMem, in);

  rosa::SearchLimits off;
  off.reduction = false;
  const rosa::SearchResult unreduced = rosa::search(q, off);
  const rosa::SearchResult reduced = rosa::search(q);

  EXPECT_EQ(unreduced.verdict, rosa::Verdict::Unreachable);
  EXPECT_EQ(reduced.verdict, rosa::Verdict::Unreachable);
  EXPECT_GT(reduced.stats.symmetry_pruned, 0u);
  EXPECT_GE(unreduced.stats.states, 5 * reduced.stats.states)
      << "reduction ratio regressed below 5x: " << unreduced.stats.states
      << " unreduced vs " << reduced.stats.states << " reduced";
}

}  // namespace
}  // namespace pa
