#include "ir/callgraph.h"

namespace pa::ir {

CallGraph CallGraph::build(const Module& module, IndirectCallPolicy policy) {
  CallGraph cg;
  for (const Function& f : module.functions())
    if (f.address_taken()) cg.address_taken_.insert(f.name());

  for (const Function& f : module.functions()) {
    auto& out = cg.edges_[f.name()];
    for (const BasicBlock& bb : f.blocks()) {
      for (const Instruction& inst : bb.instructions) {
        switch (inst.op) {
          case Opcode::Call:
            out.insert(inst.symbol);
            break;
          case Opcode::CallInd:
            cg.indirect_callers_.insert(f.name());
            if (policy == IndirectCallPolicy::Conservative)
              out.insert(cg.address_taken_.begin(), cg.address_taken_.end());
            break;
          case Opcode::Syscall:
            // signal(signo, @handler): the handler becomes asynchronously
            // callable; record it so analyses can treat it as a root.
            if (inst.symbol == "signal") {
              for (const Operand& op : inst.operands)
                if (op.kind() == Operand::Kind::Func)
                  cg.handlers_.insert(op.str_value());
            }
            break;
          default:
            break;
        }
      }
    }
  }
  return cg;
}

const std::set<std::string>& CallGraph::callees(const std::string& f) const {
  auto it = edges_.find(f);
  return it == edges_.end() ? empty_ : it->second;
}

std::set<std::string> CallGraph::reachable_from(const std::string& root) const {
  std::set<std::string> seen{root};
  std::vector<std::string> work{root};
  while (!work.empty()) {
    std::string cur = std::move(work.back());
    work.pop_back();
    for (const std::string& next : callees(cur))
      if (seen.insert(next).second) work.push_back(next);
  }
  return seen;
}

}  // namespace pa::ir
