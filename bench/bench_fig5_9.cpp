// Regenerates the paper's Figures 5-9: ROSA search time for every
// (privilege set x attack) combination of the five baseline programs,
// mean +- stdev over 10 runs.
//
// Expected shape versus the paper: attacks that succeed verify quickly
// (ROSA stops at the first witness); impossible attacks must exhaust the
// reachable space and take longer — most visibly for the file attacks,
// whose message sets are the largest (the paper's su empty-set case).
#include "bench_util.h"

using namespace pa;

int main() {
  privanalyzer::PipelineOptions opts;
  opts.run_rosa = false;  // epochs only; timing happens below

  rosa::SearchLimits limits;
  limits.max_states = 1'000'000;

  const struct {
    const char* figure;
    programs::ProgramSpec spec;
  } figures[] = {
      {"Figure 5: search time for passwd", programs::make_passwd()},
      {"Figure 6: search time for ping", programs::make_ping()},
      {"Figure 7: search time for sshd", programs::make_sshd()},
      {"Figure 8: search time for su", programs::make_su()},
      {"Figure 9: search time for thttpd", programs::make_thttpd()},
  };

  for (const auto& f : figures) {
    privanalyzer::ProgramAnalysis a =
        privanalyzer::analyze_program(f.spec, opts);
    bench::print_search_time_figure(f.figure, a, f.spec, limits);
  }
  return 0;
}
