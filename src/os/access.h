// The access-control decision library: pure functions implementing Linux's
// discretionary access control plus the capability overrides, exactly as
// open(2), chown(2), chmod(2), unlink(2), bind(2), and kill(2) describe them.
//
// Both the SimOS runtime kernel (src/os/kernel.*) and the ROSA model
// checker's transition rules (src/rosa/rules.*) call these functions, so the
// checker and the simulated kernel can never disagree about what an access
// decision would be. Property tests in tests/access_consistency_test.cpp
// exercise this guarantee.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "caps/credentials.h"
#include "caps/priv_state.h"

namespace pa::os {

using caps::CapSet;
using caps::Capability;
using caps::Credentials;
using caps::Gid;
using caps::IdTriple;
using caps::Uid;

/// Unix permission bits (the low 12 bits of st_mode).
class Mode {
 public:
  static constexpr std::uint16_t kSetuid = 04000;
  static constexpr std::uint16_t kSetgid = 02000;
  static constexpr std::uint16_t kSticky = 01000;
  static constexpr std::uint16_t kUserR = 0400, kUserW = 0200, kUserX = 0100;
  static constexpr std::uint16_t kGroupR = 040, kGroupW = 020, kGroupX = 010;
  static constexpr std::uint16_t kOtherR = 04, kOtherW = 02, kOtherX = 01;

  constexpr Mode() = default;
  explicit constexpr Mode(std::uint16_t bits) : bits_(bits & 07777) {}

  constexpr std::uint16_t bits() const { return bits_; }
  constexpr bool has(std::uint16_t mask) const { return (bits_ & mask) == mask; }
  constexpr bool any(std::uint16_t mask) const { return (bits_ & mask) != 0; }

  constexpr bool operator==(const Mode&) const = default;
  auto operator<=>(const Mode&) const = default;

  /// "rwxr-x--x" (9 chars; setuid/setgid/sticky shown as s/S, t/T).
  std::string to_string() const;
  /// Parse the 9-char symbolic form or an octal literal like "0644".
  static std::optional<Mode> parse(std::string_view s);

 private:
  std::uint16_t bits_ = 0;
};

/// Ownership + permissions of a filesystem object — all access decisions
/// need only this much of an inode.
struct FileMeta {
  Uid owner = 0;
  Gid group = 0;
  Mode mode;

  bool operator==(const FileMeta&) const = default;
  auto operator<=>(const FileMeta&) const = default;
};

enum class AccessKind { Read, Write, Execute };

/// The capability sets an access decision consults. Decisions use the
/// *effective* set; the attack model additionally lets an attacker raise
/// anything in the permitted set first, which callers model by passing the
/// permitted set here.
struct Actor {
  Credentials creds;
  CapSet effective;
};

/// Plain DAC class selection: owner / group / other permission bits,
/// ignoring capabilities. Exposed for tests.
bool dac_allows(const Credentials& creds, const FileMeta& meta,
                AccessKind kind);

/// Full open(2)-style check on a file: DAC plus CAP_DAC_OVERRIDE (read,
/// write, and execute-if-any-x-bit) and CAP_DAC_READ_SEARCH (read only).
bool may_access(const Actor& a, const FileMeta& meta, AccessKind kind);

/// Search (x) permission on a directory during path resolution:
/// DAC plus CAP_DAC_OVERRIDE or CAP_DAC_READ_SEARCH.
bool may_search(const Actor& a, const FileMeta& dir_meta);

/// chmod(2)/fchmod(2): effective uid owns the file, or CAP_FOWNER.
bool may_chmod(const Actor& a, const FileMeta& meta);

/// chown(2)/fchown(2) with `new_owner`/`new_group` (-1 = unchanged).
/// Changing the owner requires CAP_CHOWN. Changing the group is allowed for
/// the file's owner if the new group is the caller's effective or
/// supplementary gid; otherwise CAP_CHOWN is required.
bool may_chown(const Actor& a, const FileMeta& meta, int new_owner,
               int new_group);

/// unlink(2)/rename(2) victim check: write+search on the parent directory;
/// if the directory is sticky, also require owning the file or the directory
/// (or CAP_FOWNER).
bool may_unlink(const Actor& a, const FileMeta& dir_meta,
                const FileMeta& victim_meta);

/// bind(2) on a TCP port: ports below 1024 need CAP_NET_BIND_SERVICE.
bool may_bind_port(const Actor& a, int port);
inline constexpr int kPrivilegedPortMax = 1023;

/// socket(2) with SOCK_RAW: needs CAP_NET_RAW.
bool may_create_raw_socket(const Actor& a);

/// setsockopt(2) SO_DEBUG / SO_MARK: needs CAP_NET_ADMIN.
bool may_setsockopt_admin(const Actor& a);

/// chroot(2): needs CAP_SYS_CHROOT.
bool may_chroot(const Actor& a);

/// kill(2): CAP_KILL, or the sender's real/effective uid equals the target's
/// real or saved uid.
bool may_kill(const Actor& sender, const IdTriple& target_uid);

}  // namespace pa::os
