// PrivIR text parser (inverse of ir/printer.h).
//
// Grammar (';' starts a comment; blank lines ignored):
//   module   := { function }
//   function := "func" "@" name "(" int ")" "{" { block } "}"
//   block    := label ":" { instruction }
//   operand  := "%" int | int | '"' chars '"' | "@" name | "{" caps "}"
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "ir/module.h"
#include "support/error.h"

namespace pa::ir {

/// Syntax error from the text parser. Derives pa::Error (the message still
/// names the line) but additionally carries the 1-based line number as a
/// field, so the loader can thread it into a structured
/// support::Diagnostic instead of burying the location in prose.
class ParseError : public Error {
 public:
  ParseError(int line, std::string message);
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse a module; throws ir::ParseError with a line number on syntax
/// errors. The returned module has labels resolved and address-taken marks
/// computed, but is NOT verified — run ir::verify separately.
Module parse(std::string_view text, std::string module_name = "parsed");

/// Non-throwing variant; fills `error` on failure.
std::optional<Module> try_parse(std::string_view text, std::string* error,
                                std::string module_name = "parsed");

}  // namespace pa::ir
