#include "rosa/shard_table.h"

#include "support/error.h"

namespace pa::rosa {

ShardTable::ShardTable(unsigned shard_bits) : bits_(shard_bits) {
  PA_CHECK(shard_bits <= 16, "shard table: at most 2^16 shards");
  shards_.resize(std::size_t{1} << bits_);
}

unsigned ShardTable::shard_of(std::uint64_t hash) const {
  if (bits_ == 0) return 0;
  // Top bits of a splitmix-style multiply: robust even under degenerate
  // hash_override digests (a constant maps everything to one shard, which
  // is slow but stays correct — the contract is determinism, not balance).
  return static_cast<unsigned>((hash * 0x9e3779b97f4a7c15ull) >>
                               (64 - bits_));
}

void ShardTable::set_value(unsigned shard, std::uint32_t entry,
                           std::uint32_t value) {
  shards_[shard].entries[entry].value = value;
}

std::uint32_t ShardTable::value_at(unsigned shard,
                                   std::uint32_t entry) const {
  return shards_[shard].entries[entry].value;
}

std::size_t ShardTable::size() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.entries.size();
  return n;
}

void ShardTable::reserve(std::size_t per_shard) {
  for (Shard& sh : shards_) sh.heads.reserve(per_shard);
}

}  // namespace pa::rosa
