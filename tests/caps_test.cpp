// Unit tests for the capability model (caps/capability.h, caps/priv_state.h).
#include <gtest/gtest.h>

#include "caps/capability.h"
#include "caps/priv_state.h"

namespace pa::caps {
namespace {

TEST(CapSetTest, EmptyByDefault) {
  CapSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.to_string(), "(empty)");
}

TEST(CapSetTest, InitializerListAndContains) {
  CapSet s{Capability::Setuid, Capability::Chown};
  EXPECT_TRUE(s.contains(Capability::Setuid));
  EXPECT_TRUE(s.contains(Capability::Chown));
  EXPECT_FALSE(s.contains(Capability::Kill));
  EXPECT_EQ(s.size(), 2);
}

TEST(CapSetTest, SetAlgebra) {
  CapSet a{Capability::Setuid, Capability::Chown};
  CapSet b{Capability::Chown, Capability::Kill};
  EXPECT_EQ((a | b).size(), 3);
  EXPECT_EQ((a & b), CapSet{Capability::Chown});
  EXPECT_EQ((a - b), CapSet{Capability::Setuid});
  EXPECT_TRUE((a & b).subset_of(a));
  EXPECT_TRUE((a & b).subset_of(b));
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_TRUE(CapSet{}.subset_of(a));
}

TEST(CapSetTest, WithWithout) {
  CapSet s;
  s = s.with(Capability::NetRaw);
  EXPECT_TRUE(s.contains(Capability::NetRaw));
  s = s.without(Capability::NetRaw);
  EXPECT_TRUE(s.empty());
}

TEST(CapSetTest, FullContainsEverything) {
  CapSet full = CapSet::full();
  EXPECT_EQ(full.size(), kNumCapabilities);
  for (int i = 0; i < kNumCapabilities; ++i)
    EXPECT_TRUE(full.contains(static_cast<Capability>(i)));
}

TEST(CapSetTest, ToStringUsesPaperNames) {
  CapSet s{Capability::DacReadSearch, Capability::Setuid};
  EXPECT_EQ(s.to_string(), "CapDacReadSearch,CapSetuid");
}

TEST(CapSetTest, ParseCamelAndKernelNames) {
  auto a = CapSet::parse("CapSetuid,CapChown");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->contains(Capability::Setuid));
  EXPECT_TRUE(a->contains(Capability::Chown));

  auto b = CapSet::parse("CAP_SETUID, CAP_CHOWN");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);

  EXPECT_TRUE(CapSet::parse("(empty)")->empty());
  EXPECT_TRUE(CapSet::parse("")->empty());
  EXPECT_FALSE(CapSet::parse("CapBogus").has_value());
}

TEST(CapSetTest, RoundTripAllSingletons) {
  for (int i = 0; i < kNumCapabilities; ++i) {
    auto c = static_cast<Capability>(i);
    CapSet s{c};
    auto parsed = CapSet::parse(s.to_string());
    ASSERT_TRUE(parsed.has_value()) << s.to_string();
    EXPECT_EQ(*parsed, s);
    EXPECT_EQ(parse_capability(kernel_name(c)), c);
    EXPECT_EQ(parse_capability(name(c)), c);
  }
}

TEST(CapSetTest, MembersInNumericOrder) {
  CapSet s{Capability::Setuid, Capability::Chown, Capability::Kill};
  auto m = s.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], Capability::Chown);  // 0
  EXPECT_EQ(m[1], Capability::Kill);   // 5
  EXPECT_EQ(m[2], Capability::Setuid); // 7
}

TEST(PrivStateTest, LaunchedWithHasNothingRaised) {
  PrivState p = PrivState::launched_with({Capability::Setuid});
  EXPECT_TRUE(p.effective().empty());
  EXPECT_EQ(p.permitted(), CapSet{Capability::Setuid});
}

TEST(PrivStateTest, RaiseRequiresPermitted) {
  PrivState p = PrivState::launched_with({Capability::Setuid});
  EXPECT_TRUE(p.raise({Capability::Setuid}));
  EXPECT_TRUE(p.effective().contains(Capability::Setuid));
  EXPECT_FALSE(p.raise({Capability::Chown}));
  EXPECT_FALSE(p.effective().contains(Capability::Chown));
}

TEST(PrivStateTest, LowerDisablesEffectiveOnly) {
  PrivState p = PrivState::launched_with({Capability::Setuid});
  ASSERT_TRUE(p.raise({Capability::Setuid}));
  p.lower({Capability::Setuid});
  EXPECT_TRUE(p.effective().empty());
  EXPECT_TRUE(p.permitted().contains(Capability::Setuid));
  // Can raise again after a lower.
  EXPECT_TRUE(p.raise({Capability::Setuid}));
}

TEST(PrivStateTest, RemoveIsIrreversible) {
  PrivState p = PrivState::launched_with({Capability::Setuid});
  p.remove({Capability::Setuid});
  EXPECT_TRUE(p.permitted().empty());
  EXPECT_FALSE(p.raise({Capability::Setuid}));
}

TEST(PrivStateTest, RemoveOfUnheldCapIsNoop) {
  PrivState p = PrivState::launched_with({Capability::Setuid});
  p.remove({Capability::Chown});
  EXPECT_EQ(p.permitted(), CapSet{Capability::Setuid});
}

TEST(PrivStateTest, CapsetCannotGrowPermitted) {
  PrivState p = PrivState::launched_with({Capability::Setuid});
  EXPECT_FALSE(p.capset({}, {Capability::Setuid, Capability::Chown}));
  EXPECT_FALSE(p.capset({Capability::Chown}, {Capability::Setuid}));
  EXPECT_TRUE(p.capset({Capability::Setuid}, {Capability::Setuid}));
  EXPECT_TRUE(p.effective().contains(Capability::Setuid));
}

TEST(PrivStateTest, UidFixupDropsCapsWhenLeavingRoot) {
  PrivState p({Capability::Chown}, {Capability::Chown, Capability::Setuid});
  p.on_uid_change(IdTriple{0, 0, 0}, IdTriple{1000, 1000, 1000});
  EXPECT_TRUE(p.effective().empty());
  EXPECT_TRUE(p.permitted().empty());
}

TEST(PrivStateTest, UidFixupGainsEffectiveWhenBecomingRoot) {
  PrivState p({}, {Capability::Chown});
  p.on_uid_change(IdTriple{1000, 1000, 1000}, IdTriple{1000, 0, 1000});
  EXPECT_EQ(p.effective(), p.permitted());
}

TEST(PrivStateTest, StrictSecurebitsDisableFixup) {
  PrivState p({Capability::Chown}, {Capability::Chown});
  p.set_securebits(SecureBits{.no_setuid_fixup = true});
  p.on_uid_change(IdTriple{0, 0, 0}, IdTriple{1000, 1000, 1000});
  EXPECT_TRUE(p.effective().contains(Capability::Chown));
  EXPECT_TRUE(p.permitted().contains(Capability::Chown));
}

TEST(PrivStateTest, KeepCapsRetainsPermittedOnly) {
  PrivState p({Capability::Chown}, {Capability::Chown});
  p.set_securebits(SecureBits{.keep_caps = true});
  p.on_uid_change(IdTriple{0, 0, 0}, IdTriple{1000, 1000, 1000});
  EXPECT_TRUE(p.effective().empty());
  EXPECT_TRUE(p.permitted().contains(Capability::Chown));
}

}  // namespace
}  // namespace pa::caps
