file(REMOVE_RECURSE
  "CMakeFiles/witness_replay_test.dir/witness_replay_test.cpp.o"
  "CMakeFiles/witness_replay_test.dir/witness_replay_test.cpp.o.d"
  "witness_replay_test"
  "witness_replay_test.pdb"
  "witness_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
