#include "chronopriv/instrument.h"

#include "ir/verifier.h"
#include "vm/interpreter.h"

namespace pa::chronopriv {

std::map<std::pair<std::string, int>, int> static_block_counts(
    const ir::Module& module) {
  std::map<std::pair<std::string, int>, int> counts;
  for (const ir::Function& f : module.functions())
    for (std::size_t b = 0; b < f.blocks().size(); ++b)
      counts[{f.name(), static_cast<int>(b)}] =
          f.blocks()[b].countable_instructions();
  return counts;
}

ChronoReport run_instrumented(os::Kernel& kernel, const ir::Module& module,
                              os::Pid pid, std::vector<ir::RtValue> args,
                              const std::string& entry, long* exit_code) {
  EpochTracker tracker;
  return run_instrumented_with(kernel, module, pid, tracker, std::move(args),
                               entry, exit_code);
}

ChronoReport run_instrumented_with(os::Kernel& kernel,
                                   const ir::Module& module, os::Pid pid,
                                   EpochTracker& tracker,
                                   std::vector<ir::RtValue> args,
                                   const std::string& entry, long* exit_code) {
  ir::verify_or_throw(module);
  vm::Interpreter interp(kernel, module, pid);
  interp.set_tracer(&tracker);
  long rc = interp.run(entry, std::move(args));
  if (exit_code) *exit_code = rc;
  return make_report(module.name(), tracker);
}

}  // namespace pa::chronopriv
