file(REMOVE_RECURSE
  "CMakeFiles/chronopriv_test.dir/chronopriv_test.cpp.o"
  "CMakeFiles/chronopriv_test.dir/chronopriv_test.cpp.o.d"
  "chronopriv_test"
  "chronopriv_test.pdb"
  "chronopriv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronopriv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
