#include "vm/interpreter.h"

#include "support/error.h"
#include "support/str.h"
#include "vm/syscall_bridge.h"

namespace pa::vm {

Interpreter::Interpreter(os::Kernel& kernel, const ir::Module& module,
                         os::Pid pid)
    : kernel_(&kernel), module_(&module), pid_(pid) {}

ir::RtValue Interpreter::eval(const Frame& frame,
                              const ir::Operand& op) const {
  switch (op.kind()) {
    case ir::Operand::Kind::Reg:
      return frame.regs[static_cast<std::size_t>(op.reg_index())];
    case ir::Operand::Kind::Int:
      return op.int_value();
    case ir::Operand::Kind::Str:
      return op.str_value();
    case ir::Operand::Kind::Func:
      return ir::FuncRef{op.str_value()};
    case ir::Operand::Kind::Caps:
      return static_cast<std::int64_t>(op.caps_value().raw());
  }
  PA_UNREACHABLE("operand kind");
}

void Interpreter::push_frame(const std::string& fname,
                             std::vector<ir::RtValue> args,
                             int dest_in_caller) {
  const ir::Function& fn = module_->function(fname);
  PA_CHECK(static_cast<int>(args.size()) == fn.num_params(),
           str::cat("call to @", fname, " with ", args.size(),
                    " args, expected ", fn.num_params()));
  Frame frame;
  frame.fn = &fn;
  frame.dest_in_caller = dest_in_caller;
  frame.regs.resize(static_cast<std::size_t>(fn.num_registers()),
                    std::int64_t{0});
  for (std::size_t i = 0; i < args.size(); ++i) frame.regs[i] = std::move(args[i]);
  stack_.push_back(std::move(frame));
}

void Interpreter::deliver_pending_signal() {
  os::Process& p = kernel_->process(pid_);
  if (p.pending_signals.empty()) return;
  int signo = p.pending_signals.front();
  p.pending_signals.erase(p.pending_signals.begin());
  auto it = p.signal_handlers.find(signo);
  if (it == p.signal_handlers.end()) return;
  // Handler runs like a call with the signal number; its return value is
  // discarded.
  push_frame(it->second, {std::int64_t{signo}}, ir::kNoReg);
}

void Interpreter::start(const std::string& entry,
                        std::vector<ir::RtValue> args) {
  stack_.clear();
  exited_ = false;
  exit_code_ = 0;
  push_frame(entry, std::move(args), ir::kNoReg);
}

bool Interpreter::finished() const {
  return stack_.empty() || exited_ || !kernel_->process(pid_).alive();
}

long Interpreter::run(const std::string& entry,
                      std::vector<ir::RtValue> args) {
  start(entry, std::move(args));
  while (step()) {
  }
  return exit_code_;
}

bool Interpreter::step() {
  if (finished()) {
    if (kernel_->process(pid_).alive())
      kernel_->sys_exit(pid_, static_cast<int>(exit_code_));
    return false;
  }
  {
    Frame& frame = stack_.back();
    const ir::BasicBlock& bb = frame.fn->block(frame.block);
    PA_CHECK(frame.ip < bb.instructions.size(),
             str::cat("fell off block ", bb.label, " in @", frame.fn->name()));
    const ir::Instruction& inst = bb.instructions[frame.ip];

    if (++executed_ > limits_.max_instructions)
      fail(str::cat("instruction budget exhausted (",
                    limits_.max_instructions, ")"));
    if (tracer_)
      tracer_->on_instruction_at(kernel_->process(pid_), *frame.fn,
                                 frame.block, frame.ip);

    // The kernel may have killed us (signal from another process).
    if (!kernel_->process(pid_).alive()) {
      exit_code_ = kernel_->process(pid_).exit_code;
      return false;
    }

    switch (inst.op) {
      case ir::Opcode::Mov:
        frame.regs[static_cast<std::size_t>(inst.dest)] =
            eval(frame, inst.operands[0]);
        ++frame.ip;
        break;
      case ir::Opcode::Add: case ir::Opcode::Sub: case ir::Opcode::Mul:
      case ir::Opcode::Div: case ir::Opcode::CmpEq: case ir::Opcode::CmpNe:
      case ir::Opcode::CmpLt: case ir::Opcode::CmpLe: case ir::Opcode::CmpGt:
      case ir::Opcode::CmpGe: case ir::Opcode::And: case ir::Opcode::Or: {
        // Comparisons work on both ints and strings; arithmetic on ints.
        const ir::RtValue av = eval(frame, inst.operands[0]);
        const ir::RtValue bv = eval(frame, inst.operands[1]);
        std::int64_t out = 0;
        if (inst.op == ir::Opcode::CmpEq || inst.op == ir::Opcode::CmpNe) {
          const bool eq = av == bv;
          out = (inst.op == ir::Opcode::CmpEq) ? eq : !eq;
        } else {
          const std::int64_t a = ir::rt_as_int(av);
          const std::int64_t b = ir::rt_as_int(bv);
          switch (inst.op) {
            case ir::Opcode::Add: out = a + b; break;
            case ir::Opcode::Sub: out = a - b; break;
            case ir::Opcode::Mul: out = a * b; break;
            case ir::Opcode::Div:
              PA_CHECK(b != 0, "division by zero");
              out = a / b;
              break;
            case ir::Opcode::CmpLt: out = a < b; break;
            case ir::Opcode::CmpLe: out = a <= b; break;
            case ir::Opcode::CmpGt: out = a > b; break;
            case ir::Opcode::CmpGe: out = a >= b; break;
            case ir::Opcode::And: out = (a != 0) && (b != 0); break;
            case ir::Opcode::Or: out = (a != 0) || (b != 0); break;
            default: PA_UNREACHABLE("binop");
          }
        }
        frame.regs[static_cast<std::size_t>(inst.dest)] = out;
        ++frame.ip;
        break;
      }
      case ir::Opcode::Not:
        frame.regs[static_cast<std::size_t>(inst.dest)] =
            static_cast<std::int64_t>(
                ir::rt_as_int(eval(frame, inst.operands[0])) == 0);
        ++frame.ip;
        break;
      case ir::Opcode::Br:
        frame.block = inst.targets[0];
        frame.ip = 0;
        break;
      case ir::Opcode::CondBr: {
        const bool taken = ir::rt_as_int(eval(frame, inst.operands[0])) != 0;
        frame.block = inst.targets[taken ? 0 : 1];
        frame.ip = 0;
        break;
      }
      case ir::Opcode::Ret: {
        ir::RtValue rv = inst.operands.empty()
                             ? ir::RtValue{std::int64_t{0}}
                             : eval(frame, inst.operands[0]);
        const int dest = frame.dest_in_caller;
        stack_.pop_back();
        if (stack_.empty()) {
          exit_code_ = ir::rt_as_int(rv);
        } else if (dest != ir::kNoReg) {
          stack_.back().regs[static_cast<std::size_t>(dest)] = std::move(rv);
        }
        break;
      }
      case ir::Opcode::Exit:
        exit_code_ = ir::rt_as_int(eval(frame, inst.operands[0]));
        exited_ = true;
        break;
      case ir::Opcode::Unreachable:
        fail(str::cat("executed unreachable in @", frame.fn->name()));
      case ir::Opcode::Call: {
        std::vector<ir::RtValue> call_args;
        call_args.reserve(inst.operands.size());
        for (const ir::Operand& op : inst.operands)
          call_args.push_back(eval(frame, op));
        const std::string callee = inst.symbol;
        const int dest = inst.dest;
        ++frame.ip;  // return lands after the call
        push_frame(callee, std::move(call_args), dest);
        break;
      }
      case ir::Opcode::CallInd: {
        const ir::RtValue cv = eval(frame, inst.operands[0]);
        const auto* fr = std::get_if<ir::FuncRef>(&cv);
        PA_CHECK(fr != nullptr, "callind through non-function value");
        std::vector<ir::RtValue> call_args;
        for (std::size_t i = 1; i < inst.operands.size(); ++i)
          call_args.push_back(eval(frame, inst.operands[i]));
        const std::string callee = fr->name;
        const int dest = inst.dest;
        ++frame.ip;
        push_frame(callee, std::move(call_args), dest);
        break;
      }
      case ir::Opcode::FuncAddr:
        frame.regs[static_cast<std::size_t>(inst.dest)] =
            ir::FuncRef{inst.operands[0].str_value()};
        ++frame.ip;
        break;
      case ir::Opcode::Syscall: {
        std::vector<ir::RtValue> sys_args;
        sys_args.reserve(inst.operands.size());
        for (const ir::Operand& op : inst.operands)
          sys_args.push_back(eval(frame, op));
        std::int64_t r =
            dispatch_syscall(*kernel_, pid_, inst.symbol, sys_args);
        if (inst.dest != ir::kNoReg)
          frame.regs[static_cast<std::size_t>(inst.dest)] = r;
        ++frame.ip;
        break;
      }
      case ir::Opcode::PrivRaise: {
        os::SysResult r =
            kernel_->priv_raise(pid_, inst.operands[0].caps_value());
        PA_CHECK(r.ok(),
                 str::cat("priv_raise of non-permitted capability in @",
                          frame.fn->name(), " (",
                          inst.operands[0].caps_value().to_string(), ")"));
        ++frame.ip;
        break;
      }
      case ir::Opcode::PrivLower:
        kernel_->priv_lower(pid_, inst.operands[0].caps_value());
        ++frame.ip;
        break;
      case ir::Opcode::PrivRemove:
        kernel_->priv_remove(pid_, inst.operands[0].caps_value());
        ++frame.ip;
        break;
      case ir::Opcode::Nop:
        ++frame.ip;
        break;
    }

    if (!exited_) deliver_pending_signal();
  }
  if (finished()) {
    if (kernel_->process(pid_).alive())
      kernel_->sys_exit(pid_, static_cast<int>(exit_code_));
    return false;
  }
  return true;
}

}  // namespace pa::vm
