#include "chronopriv/exposure.h"

#include <algorithm>
#include <sstream>

#include "support/str.h"

namespace pa::chronopriv {

std::vector<CapabilityExposure> capability_exposure(const ChronoReport& r) {
  std::map<caps::Capability, CapabilityExposure> acc;
  for (const EpochRow& row : r.rows) {
    for (caps::Capability c : row.key.permitted.members()) {
      CapabilityExposure& e = acc[c];
      e.capability = c;
      e.fraction += row.fraction;
      e.instructions += row.instructions;
    }
  }
  std::vector<CapabilityExposure> out;
  out.reserve(acc.size());
  for (auto& [c, e] : acc) out.push_back(e);
  std::sort(out.begin(), out.end(),
            [](const CapabilityExposure& a, const CapabilityExposure& b) {
              return a.fraction > b.fraction;
            });
  return out;
}

std::string render_exposure(const ChronoReport& r) {
  std::ostringstream os;
  os << "Capability exposure for " << r.program
     << " (fraction of execution each capability stays permitted)\n";
  auto rows = capability_exposure(r);
  if (rows.empty()) {
    os << "  (no capabilities ever permitted)\n";
    return os.str();
  }
  for (const CapabilityExposure& e : rows)
    os << "  " << str::pad_right(std::string(caps::name(e.capability)), 22)
       << str::pad_left(str::percent(e.fraction), 8) << "  "
       << str::with_commas(static_cast<long long>(e.instructions)) << "\n";
  return os.str();
}

}  // namespace pa::chronopriv
