// Lightweight error-handling primitives shared by every PrivAnalyzer module.
//
// Two idioms are used across the codebase:
//  * `pa::Error` exceptions for programmer errors / violated invariants
//    (malformed IR, bad queries). These indicate bugs in the caller.
//  * `Expected<T, E>`-style results for *modelled* failures (syscall errno,
//    parse diagnostics), which are part of the simulated semantics.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace pa {

/// Exception thrown on violated invariants and misuse of library APIs.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

[[noreturn]] void fail(std::string message);

namespace detail {
void check_failed(const char* expr, const char* file, int line,
                  const std::string& message);
}  // namespace detail

}  // namespace pa

/// Assert `cond`; throws pa::Error with location info otherwise.
/// Active in all build types: the checks guard simulated-OS and model-checker
/// invariants whose violation would silently corrupt experiment results.
#define PA_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) ::pa::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define PA_UNREACHABLE(msg) ::pa::fail(std::string("unreachable: ") + (msg))
