# Empty dependencies file for pa_privc.
# This may be replaced when dependencies are built.
