#include "autopriv/priv_liveness.h"

namespace pa::autopriv {
namespace {

caps::CapSet local_caps_used(const ir::Function& f) {
  caps::CapSet used;
  for (const ir::BasicBlock& bb : f.blocks()) {
    for (const ir::Instruction& inst : bb.instructions) {
      if (inst.op == ir::Opcode::PrivRaise || inst.op == ir::Opcode::PrivLower)
        used |= inst.operands[0].caps_value();
    }
  }
  return used;
}

}  // namespace

PrivLiveness::PrivLiveness(const ir::Module& module, Options options)
    : module_(&module),
      options_(options),
      cg_(ir::CallGraph::build(module, options.indirect_calls)) {
  // summary(f) = union of local uses over everything reachable from f.
  std::map<std::string, caps::CapSet> local;
  for (const ir::Function& f : module.functions())
    local[f.name()] = local_caps_used(f);

  for (const ir::Function& f : module.functions()) {
    caps::CapSet sum;
    for (const std::string& g : cg_.reachable_from(f.name())) {
      auto it = local.find(g);
      if (it != local.end()) sum |= it->second;
    }
    summaries_[f.name()] = sum;
  }

  if (options_.handler_roots) {
    for (const std::string& h : cg_.signal_handlers())
      handler_caps_ |= summary(h);
  }
}

caps::CapSet PrivLiveness::summary(const std::string& fname) const {
  auto it = summaries_.find(fname);
  return it == summaries_.end() ? caps::CapSet{} : it->second;
}

caps::CapSet PrivLiveness::gen(const std::string& fname,
                               const ir::Instruction& inst) const {
  switch (inst.op) {
    case ir::Opcode::PrivRaise:
    case ir::Opcode::PrivLower:
      return inst.operands[0].caps_value();
    case ir::Opcode::Call:
      return summary(inst.symbol);
    case ir::Opcode::CallInd: {
      caps::CapSet sum;
      switch (options_.indirect_calls) {
        case ir::IndirectCallPolicy::Conservative:
          for (const std::string& t : cg_.address_taken()) sum |= summary(t);
          break;
        case ir::IndirectCallPolicy::Refined:
          if (fname.empty()) {
            // No function context: the per-site lookup is impossible, so
            // over-approximate with the Conservative set (still sound).
            for (const std::string& t : cg_.address_taken()) sum |= summary(t);
          } else {
            for (const std::string& t : cg_.refined_targets(
                     fname, inst.operands[0].reg_index()))
              sum |= summary(t);
          }
          break;
        case ir::IndirectCallPolicy::AssumeNone:
          break;
      }
      return sum;
    }
    case ir::Opcode::Syscall:
      if (inst.symbol == "signal" && options_.handler_roots) {
        caps::CapSet sum;
        for (const ir::Operand& op : inst.operands)
          if (op.kind() == ir::Operand::Kind::Func) sum |= summary(op.str_value());
        return sum;
      }
      return {};
    default:
      return {};
  }
}

dataflow::Facts<caps::CapSet> PrivLiveness::analyze(
    const std::string& fname, caps::CapSet boundary) const {
  const ir::Function& f = module_->function(fname);
  std::function<caps::CapSet(const ir::Instruction&, const caps::CapSet&)>
      transfer = [this, &fname](const ir::Instruction& inst,
                                const caps::CapSet& after) {
        return after | gen(fname, inst);
      };
  std::function<caps::CapSet(const caps::CapSet&, const caps::CapSet&)> join =
      [](const caps::CapSet& a, const caps::CapSet& b) { return a | b; };
  return dataflow::solve_backward<caps::CapSet>(f, boundary, caps::CapSet{},
                                                transfer, join);
}

std::vector<caps::CapSet> PrivLiveness::instruction_facts(
    const std::string& fname, int block, caps::CapSet block_out) const {
  const ir::Function& f = module_->function(fname);
  std::function<caps::CapSet(const ir::Instruction&, const caps::CapSet&)>
      transfer = [this, &fname](const ir::Instruction& inst,
                                const caps::CapSet& after) {
        return after | gen(fname, inst);
      };
  return dataflow::instruction_facts_backward<caps::CapSet>(
      f.block(block), block_out, transfer);
}

}  // namespace pa::autopriv
