# Empty compiler generated dependencies file for rosa_creat_link_test.
# This may be replaced when dependencies are built.
