// PrivC abstract syntax tree.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "caps/capability.h"
#include "privc/lexer.h"

namespace pa::privc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  Number,   // number
  String,   // "text"
  Var,      // identifier
  Funcref,  // funcref(name)
  Call,     // callee(args...) — user fn, syscall builtin, or indirect var
  Unary,    // ! expr, - expr
  Binary,   // lhs op rhs
};

struct Expr {
  ExprKind kind;
  int line = 0;

  std::int64_t number = 0;          // Number
  std::string text;                 // String body / Var & Call & Funcref name
  Tok op = Tok::Eof;                // Unary / Binary operator
  ExprPtr lhs, rhs;                 // Binary (Unary uses lhs)
  std::vector<ExprPtr> args;        // Call
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  VarDecl,   // var name = expr;
  Assign,    // name = expr;
  ExprStmt,  // expr;
  If,        // if (cond) {..} [else {..}]
  While,     // while (cond) {..}
  Return,    // return [expr];
  Exit,      // exit(expr);
  WithPriv,  // with_priv (CapA, CapB) {..}
  PrivOp,    // priv_raise/lower/remove(CapA, ...);
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::string name;              // VarDecl / Assign target
  ExprPtr expr;                  // initializer / condition / value
  std::vector<StmtPtr> body;     // If-then / While / WithPriv
  std::vector<StmtPtr> else_body;
  caps::CapSet caps;             // WithPriv / PrivOp
  Tok priv_op = Tok::Eof;        // which priv_* keyword
};

struct Function {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Program {
  std::vector<Function> functions;
};

}  // namespace pa::privc
