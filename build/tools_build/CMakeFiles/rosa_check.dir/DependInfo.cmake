
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/rosa_check_main.cpp" "tools_build/CMakeFiles/rosa_check.dir/rosa_check_main.cpp.o" "gcc" "tools_build/CMakeFiles/rosa_check.dir/rosa_check_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pa_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_autopriv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_privmodels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_chronopriv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_rosa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_privc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_caps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
