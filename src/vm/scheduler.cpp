#include "vm/scheduler.h"

namespace pa::vm {

Interpreter& Scheduler::add(const ir::Module& module, os::Pid pid,
                            const std::string& entry,
                            std::vector<ir::RtValue> args) {
  Task task;
  task.interp = std::make_unique<Interpreter>(*kernel_, module, pid);
  task.interp->start(entry, std::move(args));
  tasks_.push_back(std::move(task));
  return *tasks_.back().interp;
}

bool Scheduler::step_round(std::uint64_t quantum) {
  bool any_alive = false;
  for (Task& task : tasks_) {
    if (task.interp->finished()) {
      // Let the interpreter finalize (zombie marking) exactly once.
      task.interp->step();
      continue;
    }
    for (std::uint64_t i = 0; i < quantum; ++i)
      if (!task.interp->step()) break;
    any_alive |= !task.interp->finished();
  }
  return any_alive;
}

std::uint64_t Scheduler::run_all(std::uint64_t quantum) {
  while (step_round(quantum)) {
  }
  std::uint64_t total = 0;
  for (Task& task : tasks_) total += task.interp->executed();
  return total;
}

}  // namespace pa::vm
