#include "privc/parser.h"

#include "support/error.h"
#include "support/str.h"

namespace pa::privc {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Program parse_program() {
    Program prog;
    while (peek().kind != Tok::Eof) prog.functions.push_back(parse_function());
    return prog;
  }

 private:
  const Token& peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& advance() { return toks_[pos_++]; }
  bool check(Tok k) const { return peek().kind == k; }
  bool match(Tok k) {
    if (!check(k)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(Tok k, const char* context) {
    if (!check(k))
      err(str::cat("expected ", tok_name(k), " ", context, ", found ",
                   tok_name(peek().kind)));
    return advance();
  }
  [[noreturn]] void err(const std::string& m) const {
    fail(str::cat("PrivC parse error at line ", peek().line, ": ", m));
  }

  Function parse_function() {
    Function fn;
    fn.line = peek().line;
    expect(Tok::KwFn, "to start a function");
    fn.name = expect(Tok::Ident, "after 'fn'").text;
    expect(Tok::LParen, "after the function name");
    if (!check(Tok::RParen)) {
      fn.params.push_back(expect(Tok::Ident, "as a parameter").text);
      while (match(Tok::Comma))
        fn.params.push_back(expect(Tok::Ident, "as a parameter").text);
    }
    expect(Tok::RParen, "after the parameters");
    fn.body = parse_block();
    return fn;
  }

  std::vector<StmtPtr> parse_block() {
    expect(Tok::LBrace, "to open a block");
    std::vector<StmtPtr> body;
    while (!check(Tok::RBrace) && !check(Tok::Eof))
      body.push_back(parse_stmt());
    expect(Tok::RBrace, "to close the block");
    return body;
  }

  caps::CapSet parse_cap_list() {
    caps::CapSet set;
    do {
      const Token& t = expect(Tok::CapName, "in the capability list");
      set = set.with(*caps::parse_capability(t.text));
    } while (match(Tok::Comma));
    return set;
  }

  StmtPtr parse_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;

    if (match(Tok::KwVar)) {
      stmt->kind = StmtKind::VarDecl;
      stmt->name = expect(Tok::Ident, "after 'var'").text;
      expect(Tok::Assign, "after the variable name");
      stmt->expr = parse_expr();
      expect(Tok::Semi, "after the declaration");
      return stmt;
    }
    if (match(Tok::KwIf)) {
      stmt->kind = StmtKind::If;
      expect(Tok::LParen, "after 'if'");
      stmt->expr = parse_expr();
      expect(Tok::RParen, "after the condition");
      stmt->body = parse_block();
      if (match(Tok::KwElse)) stmt->else_body = parse_block();
      return stmt;
    }
    if (match(Tok::KwWhile)) {
      stmt->kind = StmtKind::While;
      expect(Tok::LParen, "after 'while'");
      stmt->expr = parse_expr();
      expect(Tok::RParen, "after the condition");
      stmt->body = parse_block();
      return stmt;
    }
    if (match(Tok::KwReturn)) {
      stmt->kind = StmtKind::Return;
      if (!check(Tok::Semi)) stmt->expr = parse_expr();
      expect(Tok::Semi, "after 'return'");
      return stmt;
    }
    if (match(Tok::KwExit)) {
      stmt->kind = StmtKind::Exit;
      expect(Tok::LParen, "after 'exit'");
      stmt->expr = parse_expr();
      expect(Tok::RParen, "after the exit code");
      expect(Tok::Semi, "after 'exit(...)'");
      return stmt;
    }
    if (match(Tok::KwWithPriv)) {
      stmt->kind = StmtKind::WithPriv;
      expect(Tok::LParen, "after 'with_priv'");
      stmt->caps = parse_cap_list();
      expect(Tok::RParen, "after the capability list");
      stmt->body = parse_block();
      return stmt;
    }
    if (check(Tok::KwPrivRaise) || check(Tok::KwPrivLower) ||
        check(Tok::KwPrivRemove)) {
      stmt->kind = StmtKind::PrivOp;
      stmt->priv_op = advance().kind;
      expect(Tok::LParen, "after the priv operation");
      stmt->caps = parse_cap_list();
      expect(Tok::RParen, "after the capability list");
      expect(Tok::Semi, "after the priv operation");
      return stmt;
    }
    // Assignment or expression statement.
    if (check(Tok::Ident) && peek(1).kind == Tok::Assign) {
      stmt->kind = StmtKind::Assign;
      stmt->name = advance().text;
      advance();  // '='
      stmt->expr = parse_expr();
      expect(Tok::Semi, "after the assignment");
      return stmt;
    }
    stmt->kind = StmtKind::ExprStmt;
    stmt->expr = parse_expr();
    expect(Tok::Semi, "after the expression");
    return stmt;
  }

  // Precedence climbing: || < && < comparisons < +- < */ < unary < primary.
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_binary_level(ExprPtr (Parser::*next)(),
                             std::initializer_list<Tok> ops) {
    ExprPtr lhs = (this->*next)();
    for (;;) {
      bool matched = false;
      for (Tok op : ops) {
        if (check(op)) {
          int line = peek().line;
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::Binary;
          e->line = line;
          e->op = op;
          e->lhs = std::move(lhs);
          e->rhs = (this->*next)();
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr parse_or() {
    return parse_binary_level(&Parser::parse_and, {Tok::OrOr});
  }
  ExprPtr parse_and() {
    return parse_binary_level(&Parser::parse_cmp, {Tok::AndAnd});
  }
  ExprPtr parse_cmp() {
    return parse_binary_level(&Parser::parse_add,
                              {Tok::EqEq, Tok::NotEq, Tok::Lt, Tok::Le,
                               Tok::Gt, Tok::Ge});
  }
  ExprPtr parse_add() {
    return parse_binary_level(&Parser::parse_mul, {Tok::Plus, Tok::Minus});
  }
  ExprPtr parse_mul() {
    return parse_binary_level(&Parser::parse_unary, {Tok::Star, Tok::Slash});
  }

  ExprPtr parse_unary() {
    if (check(Tok::Not) || check(Tok::Minus)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Unary;
      e->line = peek().line;
      e->op = advance().kind;
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    auto e = std::make_unique<Expr>();
    e->line = peek().line;
    if (check(Tok::Number)) {
      e->kind = ExprKind::Number;
      e->number = advance().number;
      return e;
    }
    if (check(Tok::String)) {
      e->kind = ExprKind::String;
      e->text = advance().text;
      return e;
    }
    if (match(Tok::KwFuncref)) {
      expect(Tok::LParen, "after 'funcref'");
      e->kind = ExprKind::Funcref;
      e->text = expect(Tok::Ident, "as the function name").text;
      expect(Tok::RParen, "after the function name");
      return e;
    }
    if (match(Tok::LParen)) {
      ExprPtr inner = parse_expr();
      expect(Tok::RParen, "to close the parenthesis");
      return inner;
    }
    if (check(Tok::Ident)) {
      std::string name = advance().text;
      if (match(Tok::LParen)) {
        e->kind = ExprKind::Call;
        e->text = std::move(name);
        if (!check(Tok::RParen)) {
          e->args.push_back(parse_expr());
          while (match(Tok::Comma)) e->args.push_back(parse_expr());
        }
        expect(Tok::RParen, "after the call arguments");
        return e;
      }
      e->kind = ExprKind::Var;
      e->text = std::move(name);
      return e;
    }
    err(str::cat("expected an expression, found ", tok_name(peek().kind)));
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  return Parser(lex(source)).parse_program();
}

}  // namespace pa::privc
