#include "chronopriv/epoch.h"

namespace pa::chronopriv {

void EpochTracker::on_instruction(const os::Process& p,
                                  const ir::Function& /*fn*/) {
  ++total_;
  // Fast path: privilege state unchanged since the previous instruction.
  // ChronoPriv records the permitted set and the real/effective/saved
  // uid/gid triples; supplementary groups are not part of the epoch key
  // (they are not among the credentials the paper's Table III reports).
  if (current_index_ != SIZE_MAX &&
      p.privs.permitted() == current_key_.permitted &&
      p.creds.uid == current_key_.creds.uid &&
      p.creds.gid == current_key_.creds.gid) {
    ++epochs_[current_index_].instructions;
    ++timeline_.back().length;
    return;
  }

  EpochKey key{p.privs.permitted(),
               caps::Credentials{p.creds.uid, p.creds.gid, {}}};
  timeline_.push_back(EpochSegment{key, total_ - 1, 1});
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    if (epochs_[i].key == key) {
      ++epochs_[i].instructions;
      current_key_ = std::move(key);
      current_index_ = i;
      return;
    }
  }
  epochs_.push_back(
      Epoch{key, 1, static_cast<int>(epochs_.size())});
  current_key_ = std::move(key);
  current_index_ = epochs_.size() - 1;
}

void EpochTracker::reset() {
  epochs_.clear();
  timeline_.clear();
  total_ = 0;
  current_index_ = SIZE_MAX;
}

}  // namespace pa::chronopriv
