file(REMOVE_RECURSE
  "../bench/bench_rosa_scaling"
  "../bench/bench_rosa_scaling.pdb"
  "CMakeFiles/bench_rosa_scaling.dir/bench_rosa_scaling.cpp.o"
  "CMakeFiles/bench_rosa_scaling.dir/bench_rosa_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rosa_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
