// Tests for dup(2), access(2), umask(2), and the richer AutoPriv report
// (remove-site listing) plus the textual attacker directive.
#include <gtest/gtest.h>

#include "autopriv/report.h"
#include "ir/builder.h"
#include "os/kernel.h"
#include "rosa/text.h"

namespace pa {
namespace {

using caps::Capability;
using caps::Credentials;

class OsMiscTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os::Ino home = k.vfs().mkdirs("/home");
    k.vfs().inode(home).meta = os::FileMeta{1000, 1000, os::Mode(0755)};
    k.vfs().add_file("/home/f", os::FileMeta{1000, 1000, os::Mode(0640)},
                     "data");
    pid = k.spawn("p", Credentials::of_user(1000, 1000), {});
  }
  os::Kernel k;
  os::Pid pid = 0;
};

TEST_F(OsMiscTest, DupClonesDescriptor) {
  os::SysResult fd = k.sys_open(pid, "/home/f", os::OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  os::SysResult dup = k.sys_dup(pid, static_cast<os::Fd>(fd.value()));
  ASSERT_TRUE(dup.ok());
  EXPECT_NE(dup.value(), fd.value());
  std::string buf;
  EXPECT_TRUE(k.sys_read(pid, static_cast<os::Fd>(dup.value()), &buf, 4).ok());
  EXPECT_EQ(buf, "data");
  // Closing the original leaves the dup usable.
  ASSERT_TRUE(k.sys_close(pid, static_cast<os::Fd>(fd.value())).ok());
  EXPECT_TRUE(k.sys_read(pid, static_cast<os::Fd>(dup.value()), &buf, 1).ok());
  EXPECT_EQ(k.sys_dup(pid, 99).error(), os::Errno::Ebadf);
}

TEST_F(OsMiscTest, AccessUsesRealIds) {
  // A "setuid" process whose euid can read /home/f but whose REAL uid (the
  // invoker) cannot: access(2) must deny.
  k.process(pid).creds.uid = {2000, 1000, 1000};  // real 2000, effective 1000
  k.process(pid).creds.gid = {2000, 2000, 2000};
  EXPECT_EQ(k.sys_access(pid, "/home/f", 4).error(), os::Errno::Eacces);
  // open(2) with the effective uid still works.
  EXPECT_TRUE(k.sys_open(pid, "/home/f", os::OpenFlags::kRead).ok());
  // Existence probe (mode 0) succeeds either way.
  EXPECT_TRUE(k.sys_access(pid, "/home/f", 0).ok());
  EXPECT_EQ(k.sys_access(pid, "/home/nope", 0).error(), os::Errno::Enoent);
}

TEST_F(OsMiscTest, AccessChecksEachRequestedBit) {
  EXPECT_TRUE(k.sys_access(pid, "/home/f", 4).ok());   // owner r
  EXPECT_TRUE(k.sys_access(pid, "/home/f", 6).ok());   // owner rw
  EXPECT_EQ(k.sys_access(pid, "/home/f", 1).error(),   // no x bit
            os::Errno::Eacces);
}

TEST_F(OsMiscTest, UmaskMasksCreatedModes) {
  // Default umask 022.
  os::SysResult fd = k.sys_open(pid, "/home/new1",
                                os::OpenFlags::kWrite | os::OpenFlags::kCreate,
                                os::Mode(0666));
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k.vfs().inode(*k.vfs().lookup("/home/new1")).meta.mode,
            os::Mode(0644));

  os::SysResult old = k.sys_umask(pid, os::Mode(0077));
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old.value(), 0022);
  fd = k.sys_open(pid, "/home/new2",
                  os::OpenFlags::kWrite | os::OpenFlags::kCreate,
                  os::Mode(0666));
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k.vfs().inode(*k.vfs().lookup("/home/new2")).meta.mode,
            os::Mode(0600));
}

TEST(RemoveSitesTest, ReportListsDeadPoints) {
  ir::Module m("t");
  ir::IRBuilder b(m);
  using B = ir::IRBuilder;
  b.begin_function("main", 0);
  b.priv_raise({Capability::Setuid});
  b.syscall("setuid", {B::i(0)});
  b.priv_lower({Capability::Setuid});
  b.nop(3);
  b.exit(B::i(0));
  b.end_function();

  autopriv::StaticReport report = autopriv::run_autopriv(m);
  ASSERT_FALSE(report.stats.sites.empty());
  bool found = false;
  for (const autopriv::RemoveSite& s : report.stats.sites)
    found |= s.caps.contains(Capability::Setuid);
  EXPECT_TRUE(found);
  EXPECT_NE(report.to_string().find("dead points"), std::string::npos);
}

TEST(TextAttackerTest, DirectiveParsed) {
  const char* base =
      "process 1 uid 10 10 10 gid 10 10 10\n"
      "file 3 \"f\" perms --------- owner 40 group 41\n"
      "msg chown(1, 3, 10, 41, {CapChown})\n"
      "msg chmod(1, 3, 0777, {})\n"
      "msg open(1, 3, r, {})\n"
      "goal rdfset 1 contains 3\n";

  rosa::Query plain = rosa::parse_query(base);
  EXPECT_EQ(plain.attacker, rosa::AttackerModel::Full);

  rosa::Query cfi = rosa::parse_query(std::string(base) +
                                      "attacker cfi-ordered\n");
  EXPECT_EQ(cfi.attacker, rosa::AttackerModel::CfiOrdered);
  // Program order == attack order, so still reachable.
  EXPECT_EQ(rosa::search(cfi).verdict, rosa::Verdict::Reachable);

  rosa::Query fixed = rosa::parse_query(std::string(base) +
                                        "attacker fixed-args\n");
  EXPECT_EQ(fixed.attacker, rosa::AttackerModel::FixedArgs);

  std::string err;
  EXPECT_FALSE(rosa::try_parse_query(
      std::string(base) + "attacker quantum\n", &err));
  EXPECT_NE(err.find("quantum"), std::string::npos);
}

}  // namespace
}  // namespace pa
