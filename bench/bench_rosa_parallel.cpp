// Serial vs. parallel ROSA on the Table-3 query set: build the full
// (epoch × attack) matrix for the five baseline programs, then run it with
// rosa::run_queries at 1 / 2 / 4 / 8 threads and report wall-clock speedup.
// Also reports the aggregate SearchStats, making the hashed-dedup savings
// (dedup hits vs. string-keyed rebuilds) visible alongside the fan-out win.
//
// Expected: >= 2x at 4 threads on the Table-3 set when the host has >= 4
// hardware threads (the queries are fully independent and the per-query
// skew is small — the largest single search is <10% of total work, so
// scaling is essentially linear in physical cores). On hosts with fewer
// cores the sweep degenerates into an engine-overhead measurement, and the
// bench says so explicitly rather than reporting a meaningless "speedup".
#include <chrono>
#include <iostream>

#include "privanalyzer/efficacy.h"
#include "support/str.h"
#include "support/thread_pool.h"

using namespace pa;

namespace {

double run_once(const std::vector<rosa::Query>& queries,
                const rosa::SearchLimits& limits, unsigned n_threads,
                rosa::SearchStats* stats_out) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<rosa::SearchResult> results =
      rosa::run_queries(queries, limits, n_threads);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (stats_out) {
    *stats_out = {};
    for (const rosa::SearchResult& r : results) stats_out->merge(r.stats);
  }
  return wall;
}

}  // namespace

int main() {
  // Stage 1+2 (AutoPriv + ChronoPriv) once, serially: this bench measures
  // only the ROSA stage, which dominates the pipeline.
  privanalyzer::PipelineOptions chrono_only;
  chrono_only.run_rosa = false;
  std::vector<privanalyzer::ProgramAnalysis> analyses =
      privanalyzer::analyze_baseline(chrono_only);
  std::vector<programs::ProgramSpec> specs = programs::all_baseline_programs();

  rosa::SearchLimits limits;
  limits.max_states = 1'000'000;

  std::vector<rosa::Query> queries;
  for (std::size_t p = 0; p < specs.size(); ++p) {
    const auto syscalls = specs[p].syscalls_used();
    for (const chronopriv::EpochRow& row : analyses[p].chrono.rows) {
      attacks::ScenarioInput in = attacks::scenario_from_epoch(
          row, syscalls, specs[p].scenario_extra_users,
          specs[p].scenario_extra_groups);
      // Widen the wildcard uid/gid pools to the paper's production scale
      // (the Figs. 10-11 methodology): the seed program models are small,
      // and without this the exhaustive (Safe-verdict) searches finish in
      // microseconds, leaving nothing for the fan-out to amortize.
      for (int i = 0; i < 24; ++i) {
        in.extra_users.push_back(5000 + i);
        in.extra_groups.push_back(6000 + i);
      }
      for (const attacks::AttackInfo& a : attacks::modeled_attacks())
        queries.push_back(attacks::build_attack_query(a.id, in));
    }
  }
  const unsigned cores = support::ThreadPool::hardware_threads();
  std::cout << "Table-3 query set: " << queries.size()
            << " queries (epoch x attack over 5 baseline programs,\n"
               "wildcard pools widened to paper scale); host has "
            << cores << " hardware thread(s)\n\n";

  rosa::SearchStats stats;
  // Warm-up pass so the serial baseline is not penalized by cold caches /
  // first-touch page faults.
  run_once(queries, limits, 1, nullptr);
  const double serial = run_once(queries, limits, 1, &stats);
  std::cout << "  aggregate: " << stats.to_string() << "\n\n";
  std::cout << "  " << str::pad_right("threads", 10)
            << str::pad_left("wall", 12) << str::pad_left("speedup", 10)
            << str::pad_left("ideal", 8) << "\n";
  std::cout << "  " << str::pad_right("1", 10)
            << str::pad_left(str::cat(str::fixed(serial * 1000, 1), " ms"), 12)
            << str::pad_left("1.00x", 10) << str::pad_left("1.00x", 8)
            << "\n";
  for (unsigned n : {2u, 4u, 8u}) {
    const double wall = run_once(queries, limits, n, nullptr);
    // Independent queries fan out perfectly, but never beyond the physical
    // core count.
    const double ideal = static_cast<double>(std::min(n, cores));
    std::cout << "  " << str::pad_right(std::to_string(n), 10)
              << str::pad_left(str::cat(str::fixed(wall * 1000, 1), " ms"), 12)
              << str::pad_left(str::cat(str::fixed(serial / wall, 2), "x"), 10)
              << str::pad_left(str::cat(str::fixed(ideal, 2), "x"), 8)
              << "\n";
  }
  if (cores < 4)
    std::cout << "\n  NOTE: this host cannot run 4 workers in parallel; the "
                 "sweep above measures\n  engine overhead only (expect "
                 "~1.0x). On a >=4-core host the independent,\n  low-skew "
                 "query set yields >=2x at 4 threads.\n";
  return 0;
}
