file(REMOVE_RECURSE
  "CMakeFiles/rosa_creat_link_test.dir/rosa_creat_link_test.cpp.o"
  "CMakeFiles/rosa_creat_link_test.dir/rosa_creat_link_test.cpp.o.d"
  "rosa_creat_link_test"
  "rosa_creat_link_test.pdb"
  "rosa_creat_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosa_creat_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
