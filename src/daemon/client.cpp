#include "daemon/client.h"

#include <chrono>

#include "support/diagnostics.h"
#include "support/str.h"

namespace pa::daemon {
namespace {

using support::DiagCode;
using support::Stage;

[[noreturn]] void client_fail(const std::string& what) {
  support::fail_stage(Stage::Daemon, DiagCode::ProtocolError, "", what);
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Client::Client(const std::string& socket_path)
    : sock_(support::connect_unix(socket_path)) {}

void Client::absorb(const Frame& f) {
  if (f.type == MsgType::Result) {
    pending_results_.push_back(ResultMsg::from_frame(f));
  } else if (f.type == MsgType::Event) {
    if (on_event_) on_event_(EventMsg::from_frame(f));
  }
}

Frame Client::request(const Frame& req, MsgType a, MsgType b, int timeout_ms) {
  write_frame(sock_, req);
  const std::int64_t deadline = now_ms() + timeout_ms;
  for (;;) {
    int remaining = static_cast<int>(deadline - now_ms());
    if (remaining <= 0)
      client_fail(str::cat("timed out waiting for a ", msg_type_name(a),
                           " reply"));
    std::optional<Frame> f = read_frame(sock_, remaining);
    if (!f) client_fail("server closed the connection mid-request");
    if (f->type == a || f->type == b) return std::move(*f);
    if (f->type == MsgType::ErrorMsg)
      client_fail(str::cat("server error: ",
                           kv_get(decode_kv(f->payload), "error")));
    absorb(*f);
  }
}

SubmitReply Client::submit(const JobRequest& req, int timeout_ms) {
  return SubmitReply::from_frame(
      request(req.to_frame(), MsgType::SubmitOk, MsgType::Rejected,
              timeout_ms));
}

StatusReply Client::status(std::uint64_t job_id, int timeout_ms) {
  Frame req{MsgType::Status, encode_kv({{"job_id", std::to_string(job_id)}})};
  return StatusReply::from_frame(
      request(req, MsgType::StatusReply, MsgType::StatusReply, timeout_ms));
}

StatusReply Client::cancel(std::uint64_t job_id, int timeout_ms) {
  Frame req{MsgType::Cancel, encode_kv({{"job_id", std::to_string(job_id)}})};
  return StatusReply::from_frame(
      request(req, MsgType::StatusReply, MsgType::StatusReply, timeout_ms));
}

bool Client::ping(int timeout_ms) {
  request(Frame{MsgType::Ping, ""}, MsgType::Pong, MsgType::Pong, timeout_ms);
  return true;
}

bool Client::shutdown(const std::string& mode, int timeout_ms) {
  Frame req{MsgType::Shutdown, encode_kv({{"mode", mode}})};
  request(req, MsgType::Draining, MsgType::Draining, timeout_ms);
  return true;
}

ResultMsg Client::wait_result(std::uint64_t job_id, int timeout_ms) {
  const std::int64_t deadline = now_ms() + timeout_ms;
  for (;;) {
    for (auto it = pending_results_.begin(); it != pending_results_.end();
         ++it) {
      if (it->job_id != job_id) continue;
      ResultMsg r = std::move(*it);
      pending_results_.erase(it);
      return r;
    }
    int remaining = static_cast<int>(deadline - now_ms());
    if (remaining <= 0)
      client_fail(str::cat("timed out waiting for job ", job_id,
                           "'s result"));
    std::optional<Frame> f = read_frame(sock_, remaining);
    if (!f) client_fail("server closed the connection before the result");
    if (f->type == MsgType::ErrorMsg)
      client_fail(str::cat("server error: ",
                           kv_get(decode_kv(f->payload), "error")));
    absorb(*f);
  }
}

}  // namespace pa::daemon
