#include "daemon/job.h"

#include <exception>
#include <functional>
#include <map>

#include "attacks/attacks.h"
#include "attacks/scenario.h"
#include "privanalyzer/loader.h"
#include "support/diagnostics.h"
#include "support/str.h"

namespace pa::daemon {
namespace {

using privanalyzer::AnalysisStatus;
using privanalyzer::ProgramAnalysis;
using support::DiagCode;

const std::map<std::string, programs::ProgramSpec (*)(), std::less<>>&
builtin_factories() {
  static const std::map<std::string, programs::ProgramSpec (*)(), std::less<>>
      factories = {
          {"passwd", &programs::make_passwd},
          {"su", &programs::make_su},
          {"ping", &programs::make_ping},
          {"thttpd", &programs::make_thttpd},
          {"sshd", &programs::make_sshd},
      };
  return factories;
}

bool has_diag(const ProgramAnalysis& a, DiagCode code) {
  for (const auto& d : a.diagnostics)
    if (d.code == code) return true;
  return false;
}

}  // namespace

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::Timeout: return "timeout";
    case JobState::Rejected: return "rejected";
  }
  return "unknown";
}

bool is_terminal(JobState s) {
  return s != JobState::Queued && s != JobState::Running;
}

programs::ProgramSpec resolve_program(const JobRequest& req) {
  if (req.kind == "builtin") {
    auto it = builtin_factories().find(req.source);
    if (it == builtin_factories().end())
      support::fail_stage(support::Stage::Loader, DiagCode::BadFieldValue,
                          req.name,
                          str::cat("unknown builtin program '", req.source,
                                   "' (expected a Table-II name)"));
    programs::ProgramSpec spec = it->second();
    if (!req.name.empty()) spec.name = req.name;
    return spec;
  }
  std::string_view default_name = req.name.empty() ? "job" : req.name;
  if (req.kind == "pir")
    return privanalyzer::load_program(req.source, default_name);
  if (req.kind == "pc")
    return privanalyzer::load_privc_program(req.source, default_name);
  support::fail_stage(support::Stage::Daemon, DiagCode::BadFieldValue,
                      req.name,
                      str::cat("unknown job kind '", req.kind,
                               "' (expected pir, pc, or builtin)"));
}

privanalyzer::PipelineOptions make_pipeline_options(
    const JobRequest& req, std::shared_ptr<rosa::QueryCache> cache,
    const std::atomic<bool>* cancel, double default_deadline_secs) {
  privanalyzer::PipelineOptions opts;
  opts.run_rosa = req.run_rosa;
  opts.rosa_limits.max_states = req.max_states;
  opts.rosa_limits.max_bytes = req.max_bytes;
  opts.rosa_limits.search_threads = req.search_threads;
  opts.rosa_limits.reduction = req.reduction;
  opts.rosa_limits.fused = req.fused;
  opts.rosa_limits.cancel = cancel;
  opts.rosa_threads = req.rosa_threads;
  opts.rosa_escalation_rounds = req.escalate_rounds;
  opts.max_total_seconds =
      req.deadline_secs > 0 ? req.deadline_secs : default_deadline_secs;
  opts.rosa_cache = req.use_cache;
  if (req.use_cache) opts.rosa_cache_instance = std::move(cache);
  auto mode = privanalyzer::parse_filter_mode(req.filters);
  if (!mode)
    support::fail_stage(support::Stage::Daemon, DiagCode::BadFieldValue,
                        req.name,
                        str::cat("unknown filters mode '", req.filters,
                                 "' (expected off, report, or enforce)"));
  opts.filters = *mode;
  return opts;
}

JobOutcome run_job(const JobRequest& req,
                   std::shared_ptr<rosa::QueryCache> cache,
                   const std::atomic<bool>* cancel,
                   double default_deadline_secs) {
  // try_analyze_program never throws, but resolve_program can (bad kind,
  // unknown builtin, malformed source) — fold those into a Failed analysis
  // the same way try_analyze_file does, so no request kills the worker.
  ProgramAnalysis analysis;
  try {
    programs::ProgramSpec spec = resolve_program(req);
    privanalyzer::PipelineOptions opts = make_pipeline_options(
        req, std::move(cache), cancel, default_deadline_secs);
    analysis = privanalyzer::try_analyze_program(spec, opts);
  } catch (const std::exception& e) {
    analysis.program = req.name.empty() ? "job" : req.name;
    analysis.status = AnalysisStatus::Failed;
    analysis.diagnostics.push_back(
        support::diagnostic_from_exception(e, support::Stage::Daemon,
                                           analysis.program));
  }

  JobOutcome out;
  if (cancel && cancel->load(std::memory_order_relaxed)) {
    out.state = JobState::Cancelled;
  } else if (has_diag(analysis, DiagCode::DeadlineExceeded)) {
    out.state = JobState::Timeout;
  } else {
    out.state = analysis.ok() ? JobState::Done : JobState::Failed;
  }
  out.exit_code = analysis.ok() ? privanalyzer::kExitOk
                                : privanalyzer::kExitAllFailed;
  out.body = render_job_result(analysis);
  return out;
}

std::string render_job_result(const ProgramAnalysis& analysis) {
  std::string out = str::cat("program ", analysis.program, "\nstatus ",
                             privanalyzer::analysis_status_name(
                                 analysis.status),
                             " exit ", analysis.exit_code, "\n");
  if (!analysis.diagnostics.empty())
    out += support::render_diagnostics(analysis.diagnostics);
  for (std::size_t i = 0; i < analysis.chrono.rows.size(); ++i) {
    const chronopriv::EpochRow& row = analysis.chrono.rows[i];
    out += str::cat("epoch ", row.name, " permitted=",
                    row.key.permitted.to_string(), " creds=",
                    row.key.creds.to_string(), " instructions=",
                    row.instructions, " fraction=", str::fixed(row.fraction, 6),
                    "\n");
    if (i < analysis.verdicts.size()) {
      const attacks::EpochVerdicts& v = analysis.verdicts[i];
      out += "verdicts ";
      for (std::size_t a = 0; a < v.verdicts.size(); ++a)
        out.push_back(attacks::cell_symbol(v.verdicts[a]));
      out.push_back('\n');
      for (std::size_t a = 0; a < v.results.size(); ++a)
        for (const rosa::Action& act : v.results[a].witness)
          out += str::cat("w ", row.name, " attack", a + 1, " ",
                          act.to_string(), "\n");
    }
  }
  if (!analysis.verdicts.empty())
    for (std::size_t a = 0; a < attacks::modeled_attacks().size(); ++a)
      out += str::cat("vulnerable attack", a + 1, " ",
                      str::fixed(analysis.vulnerable_fraction(a), 6), "\n");
  if (!analysis.filter_report.empty()) {
    const std::size_t surface =
        analysis.filter_report.program_syscalls.size();
    for (std::size_t i = 0; i < analysis.filter_report.epochs.size(); ++i) {
      const filters::EpochFilter& e = analysis.filter_report.epochs[i];
      out += str::cat("filter ", e.epoch, " conservative=",
                      e.conservative.size(), " refined=", e.refined.size(),
                      " surface=", surface, " reduced=",
                      e.conservative.size() < surface ? 1 : 0, "\n");
      if (i < analysis.filtered_verdicts.size()) {
        out += str::cat("fverdicts ", e.epoch, " ");
        for (attacks::CellVerdict v : analysis.filtered_verdicts[i].verdicts)
          out.push_back(attacks::cell_symbol(v));
        out.push_back('\n');
      }
    }
    if (analysis.filter_violations > 0)
      out += str::cat("filter_violations ", analysis.filter_violations, "\n");
    if (!analysis.filtered_verdicts.empty())
      for (std::size_t a = 0; a < attacks::modeled_attacks().size(); ++a)
        out += str::cat("filtered_vulnerable attack", a + 1, " ",
                        str::fixed(analysis.filtered_vulnerable_fraction(a), 6),
                        "\n");
  }
  return out;
}

}  // namespace pa::daemon
