// Call graph over a PrivIR module. Direct calls contribute precise edges;
// how an indirect call resolves is the IndirectCallPolicy:
//
//  * Conservative reproduces AutoPriv's construction — every `callind`
//    targets EVERY address-taken function, the over-approximation the paper
//    identifies as the reason sshd's privileges stay live;
//  * Refined resolves each `callind` site with the Andersen-lite
//    function-pointer propagation (dataflow/funcptr.h) plus arity
//    filtering. Refined target sets are always subsets of the Conservative
//    ones (enforced by tests/funcptr_refinement_test.cpp), so every
//    consumer's results tighten monotonically and AutoPriv's inserted
//    priv_removes move earlier, never later.
//
// Construction lives in dataflow/callgraph.cpp: the Refined policy needs
// the dataflow engine, which layers above ir/, so the implementation sits
// with it (pa_dataflow) while this header keeps the ir-level vocabulary.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/module.h"

namespace pa::ir {

/// How indirect calls are resolved.
enum class IndirectCallPolicy {
  /// Targets = all address-taken functions (AutoPriv's behaviour; sound).
  Conservative,
  /// Targets = the function-pointer propagation's per-site sets, arity
  /// filtered (sound, and always ⊆ Conservative).
  Refined,
  /// Targets = none (unsound; used only by the ablation benchmark to show
  /// what a perfectly precise call graph would buy).
  AssumeNone,
};

std::string_view indirect_call_policy_name(IndirectCallPolicy p);

class CallGraph {
 public:
  static CallGraph build(const Module& module,
                         IndirectCallPolicy policy =
                             IndirectCallPolicy::Conservative);

  /// Direct + resolved-indirect callees of `fname`.
  const std::set<std::string>& callees(const std::string& fname) const;

  /// All functions reachable from `root` (including `root`).
  std::set<std::string> reachable_from(const std::string& root) const;

  /// Functions registered as signal handlers anywhere in the module
  /// (operands of `syscall signal(signo, @handler)` instructions).
  const std::set<std::string>& signal_handlers() const { return handlers_; }

  /// Address-taken functions (the Conservative indirect-call target set).
  const std::set<std::string>& address_taken() const { return address_taken_; }

  bool has_indirect_call(const std::string& fname) const {
    return indirect_callers_.contains(fname);
  }

  /// Refined targets of a `callind` through register `reg` of `fname`.
  /// Meaningful only for a Refined-policy graph; empty otherwise (and for
  /// sites whose pointer can never hold a matching-arity FuncRef).
  const std::set<std::string>& refined_targets(const std::string& fname,
                                               int reg) const;

  IndirectCallPolicy policy() const { return policy_; }

 private:
  IndirectCallPolicy policy_ = IndirectCallPolicy::Conservative;
  std::map<std::string, std::set<std::string>> edges_;
  std::set<std::string> handlers_;
  std::set<std::string> address_taken_;
  std::set<std::string> indirect_callers_;
  /// (function, callee register) -> targets, from dataflow::FuncPtrResult.
  std::map<std::string, std::map<int, std::set<std::string>>> refined_;
  std::set<std::string> empty_;
};

}  // namespace pa::ir
