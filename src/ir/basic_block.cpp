#include "ir/basic_block.h"

namespace pa::ir {

int BasicBlock::countable_instructions() const {
  int n = 0;
  for (const Instruction& inst : instructions)
    if (inst.op != Opcode::Unreachable) ++n;
  return n;
}

}  // namespace pa::ir
