// Tests for the PrivIR cleanup transformations and the dominator analysis.
#include <gtest/gtest.h>

#include "autopriv/report.h"
#include "chronopriv/instrument.h"
#include "ir/builder.h"
#include "ir/dominators.h"
#include "ir/transforms.h"
#include "ir/verifier.h"
#include "programs/world.h"
#include "vm/interpreter.h"

namespace pa::ir {
namespace {

using B = IRBuilder;

TEST(FoldConstantsTest, ArithmeticAndComparisons) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  int x = b.add(B::i(2), B::i(3));
  int y = b.mul(B::r(x), B::i(10));  // not constant: operand is a register
  b.cmp_lt(B::i(1), B::i(2));
  b.not_(B::i(0));
  b.ret(B::r(y));
  b.end_function();

  TransformCounts c = fold_constants(m.function("main"));
  EXPECT_EQ(c.folded_instructions, 3);  // add, cmplt, not — mul stays
  const auto& insts = m.function("main").block(0).instructions;
  EXPECT_EQ(insts[0].op, Opcode::Mov);
  EXPECT_EQ(insts[0].operands[0].int_value(), 5);
  EXPECT_EQ(insts[1].op, Opcode::Mul);
  EXPECT_EQ(insts[2].operands[0].int_value(), 1);
  EXPECT_EQ(insts[3].operands[0].int_value(), 1);  // !0
  EXPECT_TRUE(verify(m).empty());
}

TEST(FoldConstantsTest, DivByZeroNotFolded) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  int x = b.binop(Opcode::Div, B::i(4), B::i(0));
  b.ret(B::r(x));
  b.end_function();
  EXPECT_EQ(fold_constants(m.function("main")).folded_instructions, 0);
}

TEST(FoldConstantsTest, ConstantCondBrBecomesBr) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.condbr(B::i(1), "yes", "no");
  b.at("yes");
  b.ret(B::i(1));
  b.at("no");
  b.ret(B::i(0));
  b.end_function();

  fold_constants(m.function("main"));
  const Instruction& term = m.function("main").block(0).instructions.back();
  EXPECT_EQ(term.op, Opcode::Br);
  EXPECT_EQ(term.target_labels[0], "yes");
}

TEST(UnreachableBlocksTest, RemovedAfterFolding) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.condbr(B::i(1), "yes", "no");
  b.at("yes");
  b.ret(B::i(1));
  b.at("no");
  b.ret(B::i(0));
  b.end_function();

  Function& f = m.function("main");
  fold_constants(f);
  TransformCounts c = remove_unreachable_blocks(f);
  EXPECT_EQ(c.removed_blocks, 1);
  EXPECT_EQ(f.blocks().size(), 2u);
  EXPECT_TRUE(verify(m).empty());
}

TEST(MergeBlocksTest, StraightLineChainsCollapse) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.nop(1);
  b.br("mid");
  b.at("mid");
  b.nop(1);
  b.br("end");
  b.at("end");
  b.ret(B::i(0));
  b.end_function();

  TransformCounts c = merge_straightline_blocks(m.function("main"));
  EXPECT_EQ(c.merged_blocks, 2);
  EXPECT_EQ(m.function("main").blocks().size(), 1u);
  EXPECT_TRUE(verify(m).empty());
}

TEST(MergeBlocksTest, MultiplePredecessorsNotMerged) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 1);
  b.condbr(B::r(0), "a", "b");
  b.at("a");
  b.br("join");
  b.at("b");
  b.br("join");
  b.at("join");
  b.ret(B::i(0));
  b.end_function();

  TransformCounts c = merge_straightline_blocks(m.function("main"));
  EXPECT_EQ(c.merged_blocks, 0);
}

TEST(SimplifyTest, SemanticsPreserved) {
  // A program with foldable branches must compute the same result before
  // and after simplification.
  auto build = [] {
    Module m("t");
    IRBuilder b(m);
    b.begin_function("main", 0);
    int flag = b.cmpeq(B::i(3), B::i(3));
    b.condbr(B::r(flag), "taken", "nottaken");
    b.at("taken");
    int v = b.add(B::i(40), B::i(2));
    b.ret(B::r(v));
    b.at("nottaken");
    b.ret(B::i(0));
    b.end_function();
    return m;
  };

  Module before = build();
  Module after = build();
  // Fold the flag's register use too: run fold + propagate manually by
  // re-running simplify (register operands are not propagated, so the
  // condbr stays — simplify still must not change behaviour).
  simplify(after);
  EXPECT_TRUE(verify(after).empty());

  os::Kernel k1, k2;
  os::Pid p1 = k1.spawn("p", caps::Credentials::of_user(1000, 1000), {});
  os::Pid p2 = k2.spawn("p", caps::Credentials::of_user(1000, 1000), {});
  vm::Interpreter i1(k1, before, p1), i2(k2, after, p2);
  EXPECT_EQ(i1.run("main"), i2.run("main"));
}

TEST(SimplifyTest, CleansUpAfterAutoPrivStyleEdits) {
  // Simulate an edge-split forwarding block and check it merges away.
  Module m = [] {
    Module mm("t");
    IRBuilder b(mm);
    b.begin_function("main", 0);
    b.nop(2);
    b.br("split");
    b.at("split");
    b.priv_remove({caps::Capability::Setuid});
    b.br("cont");
    b.at("cont");
    b.exit(B::i(0));
    b.end_function();
    return mm;
  }();
  TransformCounts c = simplify(m);
  EXPECT_GE(c.merged_blocks, 2);
  EXPECT_EQ(m.function("main").blocks().size(), 1u);
}

TEST(DominatorsTest, Diamond) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 1);
  b.condbr(B::r(0), "left", "right");   // 0
  b.at("left");
  b.br("join");                          // 1
  b.at("right");
  b.br("join");                          // 2
  b.at("join");
  b.ret(B::i(0));                        // 3
  b.end_function();

  DominatorTree dt(m.function("main"));
  EXPECT_EQ(dt.idom(0), -1);
  EXPECT_EQ(dt.idom(1), 0);
  EXPECT_EQ(dt.idom(2), 0);
  EXPECT_EQ(dt.idom(3), 0);  // join's idom is the branch, not a side
  EXPECT_TRUE(dt.dominates(0, 3));
  EXPECT_FALSE(dt.dominates(1, 3));
  EXPECT_TRUE(dt.dominates(3, 3));
}

TEST(DominatorsTest, LoopBackEdge) {
  Module m("t");
  IRBuilder b(m);
  b.begin_function("main", 0);
  b.br("head");          // 0
  b.at("head");
  int c = b.cmp_lt(B::i(0), B::i(1));
  b.condbr(B::r(c), "body", "done");  // 1
  b.at("body");
  b.br("head");          // 2
  b.at("done");
  b.ret(B::i(0));        // 3
  b.end_function();

  DominatorTree dt(m.function("main"));
  EXPECT_EQ(dt.idom(1), 0);
  EXPECT_EQ(dt.idom(2), 1);
  EXPECT_EQ(dt.idom(3), 1);
  EXPECT_TRUE(dt.dominates(1, 2));
  EXPECT_FALSE(dt.dominates(2, 1));
}

TEST(DominatorsTest, RPOCoversReachableOnly) {
  Module m("t");
  Function& f = m.add_function("main", 0);
  f.add_block("entry");
  f.block(0).instructions.push_back(
      {.op = Opcode::Ret, .operands = {Operand::imm(0)}});
  f.add_block("orphan");
  f.block(1).instructions.push_back(
      {.op = Opcode::Ret, .operands = {Operand::imm(0)}});
  f.resolve_labels();

  DominatorTree dt(f);
  EXPECT_EQ(dt.reverse_post_order().size(), 1u);
  EXPECT_EQ(dt.idom(1), -1);
}

TEST(SimplifyTest, TransformedProgramsStillMeasureTheSame) {
  // AutoPriv output -> simplify -> ChronoPriv must give identical epoch
  // structure (simplification never moves a priv instruction across an
  // epoch boundary; it only merges forwarding blocks).
  programs::ProgramSpec spec = programs::make_ping();
  ir::Module module = spec.module;
  autopriv::run_autopriv(module);

  ir::Module simplified = spec.module;  // rebuild & retransform
  autopriv::run_autopriv(simplified);
  simplify(simplified);
  verify_or_throw(simplified);

  auto run = [&](const ir::Module& mod) {
    os::Kernel k = programs::make_standard_world();
    os::Pid pid = programs::spawn_program(k, spec);
    return chronopriv::run_instrumented(k, mod, pid, spec.args);
  };
  chronopriv::ChronoReport r1 = run(module);
  chronopriv::ChronoReport r2 = run(simplified);
  ASSERT_EQ(r1.rows.size(), r2.rows.size());
  for (std::size_t i = 0; i < r1.rows.size(); ++i) {
    EXPECT_EQ(r1.rows[i].key.permitted, r2.rows[i].key.permitted);
    // Counts may differ slightly (merged branches), fractions barely.
    EXPECT_NEAR(r1.rows[i].fraction, r2.rows[i].fraction, 0.02);
  }
}

}  // namespace
}  // namespace pa::ir
