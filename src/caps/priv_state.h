// Per-process privilege state: the effective / permitted / inheritable
// capability sets, the securebits that control root-uid "fixup" behaviour,
// and the three privilege-manipulation wrappers the paper adopts from
// AutoPriv: priv_raise, priv_lower, priv_remove.
#pragma once

#include <string>

#include "caps/capability.h"
#include "caps/credentials.h"

namespace pa::caps {

/// Securebits (prctl(PR_SET_SECUREBITS)) relevant to this work. PrivAnalyzer
/// inserts a prctl call disabling the kernel's backward-compatibility
/// behaviours so that having euid 0 does not silently re-grant privileges.
struct SecureBits {
  /// SECBIT_NO_SETUID_FIXUP: uid transitions do not touch capability sets.
  bool no_setuid_fixup = false;
  /// SECBIT_NOROOT: exec as root does not grant the full set (modelled for
  /// completeness; the evaluation programs never exec).
  bool noroot = false;
  /// SECBIT_KEEP_CAPS: keep permitted caps when all uids leave 0.
  bool keep_caps = false;

  bool operator==(const SecureBits&) const = default;
};

/// The three capability sets of a task plus securebits.
class PrivState {
 public:
  PrivState() = default;
  PrivState(CapSet effective, CapSet permitted, CapSet inheritable = {})
      : effective_(effective & permitted),
        permitted_(permitted),
        inheritable_(inheritable) {}

  /// Process launched with `permitted` available but nothing raised —
  /// the starting state of the paper's evaluation programs.
  static PrivState launched_with(CapSet permitted) {
    return PrivState({}, permitted);
  }

  CapSet effective() const { return effective_; }
  CapSet permitted() const { return permitted_; }
  CapSet inheritable() const { return inheritable_; }
  const SecureBits& securebits() const { return securebits_; }

  /// priv_raise: enable caps in the effective set. Fails (returns false,
  /// state unchanged) unless `caps ⊆ permitted`.
  bool raise(CapSet caps);

  /// priv_lower: disable caps in the effective set. Always succeeds.
  void lower(CapSet caps);

  /// priv_remove: disable caps in both effective and permitted sets.
  /// Irreversible until exec — this is what makes privileges attacker-proof.
  void remove(CapSet caps);

  /// capset(2) semantics: replace the sets; permitted may only shrink and
  /// effective must stay within the new permitted. Returns false on EPERM.
  bool capset(CapSet new_effective, CapSet new_permitted);

  void set_securebits(SecureBits bits) { securebits_ = bits; }

  /// Apply the kernel's uid-transition capability fixup (capabilities(7)).
  /// Call after every change to the process's uid triple.
  void on_uid_change(const IdTriple& before, const IdTriple& after);

  bool operator==(const PrivState&) const = default;

  std::string to_string() const;

 private:
  CapSet effective_;
  CapSet permitted_;
  CapSet inheritable_;
  SecureBits securebits_;
};

}  // namespace pa::caps
