#include "dataflow/funcptr.h"

#include <functional>

#include "dataflow/solver.h"

namespace pa::dataflow {
namespace {

/// The intraprocedural lattice: register -> set of possible FuncRef
/// targets. Absent registers hold no FuncRef. Join is pointwise union.
using Env = std::map<int, std::set<std::string>>;

Env join_env(const Env& a, const Env& b) {
  Env out = a;
  for (const auto& [reg, funcs] : b) out[reg].insert(funcs.begin(), funcs.end());
  return out;
}

/// Interprocedural facts accumulated across rounds. All sets only ever
/// grow, so the analysis is monotone and the fixpoint test is a simple
/// equality snapshot.
struct Global {
  // Pointees flowing into each function's parameters (param index keyed).
  std::map<std::string, Env> param_in;
  // Pointees flowing out of each function's `ret`.
  std::map<std::string, std::set<std::string>> ret_out;
  FuncPtrResult result;

  bool operator==(const Global& o) const {
    return param_in == o.param_in && ret_out == o.ret_out &&
           result.callind_targets == o.result.callind_targets &&
           result.signal_handlers == o.result.signal_handlers;
  }
};

/// Pointees an operand can contribute: a register's current environment
/// entry, or a literal @func (the VM evaluates either to a FuncRef).
std::set<std::string> eval_operand(const Env& env, const ir::Operand& op) {
  switch (op.kind()) {
    case ir::Operand::Kind::Reg: {
      auto it = env.find(op.reg_index());
      return it == env.end() ? std::set<std::string>{} : it->second;
    }
    case ir::Operand::Kind::Func:
      return {op.str_value()};
    default:
      return {};
  }
}

void flow_args_into(Global& g, const ir::Module& module,
                    const std::string& callee, const Env& env,
                    const ir::Instruction& inst, std::size_t first_arg) {
  if (!module.has_function(callee)) return;
  Env& params = g.param_in[callee];
  for (std::size_t i = first_arg; i < inst.operands.size(); ++i) {
    std::set<std::string> in = eval_operand(env, inst.operands[i]);
    if (!in.empty())
      params[static_cast<int>(i - first_arg)].insert(in.begin(), in.end());
  }
}

void solve_function(Global& g, const ir::Module& module,
                    const ir::Function& f) {
  const std::string& fname = f.name();

  std::function<Env(const ir::Instruction&, const Env&)> transfer =
      [&](const ir::Instruction& inst, const Env& before) -> Env {
    Env env = before;
    auto set_dest = [&](std::set<std::string> pts) {
      if (inst.dest == ir::kNoReg) return;
      if (pts.empty()) env.erase(inst.dest);
      else env[inst.dest] = std::move(pts);
    };
    switch (inst.op) {
      case ir::Opcode::FuncAddr:
        set_dest({inst.operands[0].str_value()});
        break;
      case ir::Opcode::Mov:
        set_dest(eval_operand(env, inst.operands[0]));
        break;
      case ir::Opcode::Call: {
        flow_args_into(g, module, inst.symbol, env, inst, /*first_arg=*/0);
        auto it = g.ret_out.find(inst.symbol);
        set_dest(it == g.ret_out.end() ? std::set<std::string>{} : it->second);
        break;
      }
      case ir::Opcode::CallInd: {
        const int callee_reg = inst.operands[0].reg_index();
        const int argc = static_cast<int>(inst.operands.size()) - 1;
        std::set<std::string> rets;
        std::set<std::string>& site =
            g.result.callind_targets[fname][callee_reg];
        for (const std::string& t : eval_operand(env, inst.operands[0])) {
          // Arity filter: the VM aborts mismatched calls, so a target with
          // the wrong parameter count is never feasible.
          if (!module.has_function(t) ||
              module.function(t).num_params() != argc)
            continue;
          site.insert(t);
          flow_args_into(g, module, t, env, inst, /*first_arg=*/1);
          auto it = g.ret_out.find(t);
          if (it != g.ret_out.end())
            rets.insert(it->second.begin(), it->second.end());
        }
        set_dest(std::move(rets));
        break;
      }
      case ir::Opcode::Ret:
        if (!inst.operands.empty()) {
          std::set<std::string> out = eval_operand(env, inst.operands[0]);
          g.ret_out[fname].insert(out.begin(), out.end());
        }
        break;
      case ir::Opcode::Syscall:
        // `syscall signal(signo, handler)` registers its handler operand as
        // an asynchronous entry point — whether it is a literal @func or a
        // propagated register value. Handlers run with one argument (the
        // signal number); the VM aborts any other arity, so filter on it.
        if (inst.symbol == "signal" && inst.operands.size() >= 2) {
          for (const std::string& h : eval_operand(env, inst.operands[1]))
            if (module.has_function(h) && module.function(h).num_params() == 1)
              g.result.signal_handlers.insert(h);
        }
        // The syscall's own result is an integer, never a FuncRef.
        if (inst.dest != ir::kNoReg) env.erase(inst.dest);
        break;
      default:
        // Arithmetic, comparisons, syscalls, privops: the destination (if
        // any) is an integer, never a FuncRef.
        if (inst.dest != ir::kNoReg) env.erase(inst.dest);
        break;
    }
    return env;
  };
  std::function<Env(const Env&, const Env&)> join = join_env;

  // Entry boundary: whatever flows into the parameters from call sites.
  Env boundary;
  auto pit = g.param_in.find(fname);
  if (pit != g.param_in.end()) {
    for (const auto& [idx, funcs] : pit->second)
      if (idx < f.num_params()) boundary[idx] = funcs;
  }
  solve_forward<Env>(f, boundary, Env{}, transfer, join);
}

}  // namespace

const std::set<std::string>& FuncPtrResult::targets(const std::string& fname,
                                                    int reg) const {
  static const std::set<std::string> empty;
  auto fit = callind_targets.find(fname);
  if (fit == callind_targets.end()) return empty;
  auto rit = fit->second.find(reg);
  return rit == fit->second.end() ? empty : rit->second;
}

FuncPtrResult analyze_func_ptrs(const ir::Module& module) {
  // Every transfer only accumulates into `g`, so per-function solves are
  // monotone in the interprocedural facts; iterating them until a whole
  // round changes nothing reaches the least fixpoint. The lattice is
  // finite (functions × registers × function names), so this terminates.
  Global g;
  while (true) {
    Global before = g;
    for (const ir::Function& f : module.functions()) solve_function(g, module, f);
    if (g == before) break;
  }
  return std::move(g.result);
}

}  // namespace pa::dataflow
