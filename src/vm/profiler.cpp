#include "vm/profiler.h"

#include <algorithm>
#include <sstream>

#include "support/str.h"

namespace pa::vm {

void FunctionProfiler::on_instruction(const os::Process&,
                                      const ir::Function& fn) {
  ++total_;
  if (&fn == last_fn_ && last_slot_) {
    ++*last_slot_;
    return;
  }
  last_fn_ = &fn;
  last_slot_ = &counts_[fn.name()];
  ++*last_slot_;
}

std::vector<FunctionProfiler::Entry> FunctionProfiler::entries() const {
  std::vector<Entry> out;
  out.reserve(counts_.size());
  for (const auto& [name, count] : counts_) {
    Entry e;
    e.function = name;
    e.instructions = count;
    e.fraction = total_ == 0 ? 0.0
                             : static_cast<double>(count) /
                                   static_cast<double>(total_);
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.instructions > b.instructions;
  });
  return out;
}

std::string FunctionProfiler::to_string() const {
  std::ostringstream os;
  os << "Function profile ("
     << str::with_commas(static_cast<long long>(total_)) << " instructions)\n";
  for (const Entry& e : entries())
    os << "  " << str::pad_right("@" + e.function, 24)
       << str::pad_left(str::percent(e.fraction), 8) << "  "
       << str::with_commas(static_cast<long long>(e.instructions)) << "\n";
  return os.str();
}

void FunctionProfiler::reset() {
  counts_.clear();
  total_ = 0;
  last_fn_ = nullptr;
  last_slot_ = nullptr;
}

}  // namespace pa::vm
