// ROSA (Rewrite of Objects for Syscall Analysis) — system state.
//
// Exactly the paper's object model: a Linux system is a set of objects —
// processes, files, directory entries, TCP sockets, plus user and group
// objects that bound the values wildcard uid/gid arguments may take. The
// original is written in Object Maude; here the same configuration is a C++
// value type explored by an explicit-state search (rosa/search.h), with
// syscall messages carried as a consumed-once bitmask.
//
// The representation is split for search throughput. Everything the rewrite
// rules can mutate (object attributes, fd-sets, the message mask) lives
// directly in State; everything they cannot — display names and the
// user/group pools — lives in an immutable WorldSkeleton shared by every
// state of one search via shared_ptr, so copying a state copies one pointer
// instead of a pile of strings. The 64-bit dedup digest is maintained
// incrementally: mutate_*()/add_*()/set_msgs_remaining() XOR the touched
// object's sub-hash out and back in, so hashing a successor costs O(touched
// objects), not O(state).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "caps/credentials.h"
#include "os/access.h"
#include "rosa/flat_set.h"

namespace pa::rosa {

/// Process object: credentials, run state, and the sets of object ids the
/// process has opened for reading (rdfset) and writing (wrfset).
struct ProcObj {
  int id = 0;
  caps::IdTriple uid;
  caps::IdTriple gid;
  std::vector<caps::Gid> supplementary;
  bool running = true;
  FlatIntSet rdfset;
  FlatIntSet wrfset;

  bool operator==(const ProcObj&) const = default;

  caps::Credentials creds() const {
    // set_supplementary() sorts and dedups, so the groups must not also be
    // passed to the constructor (which would copy + normalize them twice).
    caps::Credentials c{uid, gid, {}};
    c.set_supplementary(supplementary);
    return c;
  }
};

/// File object: ownership and permissions. The human-readable name lives in
/// the WorldSkeleton (rewrite rules never consult it), exactly as in the
/// paper where names are cosmetic attributes.
struct FileObj {
  int id = 0;
  os::FileMeta meta;

  bool operator==(const FileObj&) const = default;
};

/// Directory-entry object: like a file plus an `inode` attribute naming the
/// file object the entry refers to (-1 = dangling/removed). ROSA models
/// pathname lookup on a single parent directory.
struct DirObj {
  int id = 0;
  os::FileMeta meta;
  int inode = -1;

  bool operator==(const DirObj&) const = default;
};

/// TCP socket object.
struct SockObj {
  int id = 0;
  int owner_proc = -1;
  int port = -1;  // -1 = unbound

  bool operator==(const SockObj&) const = default;
};

/// The per-query immutable half of a configuration: display names for
/// file/dir objects plus the user and group pools wildcard arguments draw
/// from (constraining these bounds the search space, §V-B). Rewrite rules
/// read but never write it, so every state of one search shares a single
/// instance.
struct WorldSkeleton {
  /// id -> display name, sorted by id (files and dirs share the space).
  std::vector<std::pair<int, std::string>> names;
  std::vector<int> users;
  std::vector<int> groups;

  bool operator==(const WorldSkeleton&) const = default;
};

/// A ROSA configuration. Object vectors are kept sorted by id so that equal
/// configurations serialize identically (canonical form for search dedup).
struct State {
  std::vector<ProcObj> procs;
  std::vector<FileObj> files;
  std::vector<DirObj> dirs;
  std::vector<SockObj> socks;

  bool operator==(const State& other) const;

  ProcObj* find_proc(int id);
  const ProcObj* find_proc(int id) const;
  FileObj* find_file(int id);
  const FileObj* find_file(int id) const;
  DirObj* find_dir(int id);
  const DirObj* find_dir(int id) const;
  SockObj* find_sock(int id);
  const SockObj* find_sock(int id) const;

  /// The directory entry whose inode refers to `file_id`, or nullptr.
  const DirObj* parent_dir_of(int file_id) const;

  /// True if some socket is bound to `port`.
  bool port_in_use(int port) const;

  /// Smallest object id not in use (for socket creation).
  int next_object_id() const;

  // --- message mask --------------------------------------------------------

  std::uint64_t msgs_remaining() const { return msgs_remaining_; }
  /// Digest-maintaining mask update (successor construction in the search).
  void set_msgs_remaining(std::uint64_t m);

  // --- world skeleton ------------------------------------------------------

  const std::vector<int>& users() const;
  const std::vector<int>& groups() const;
  void set_users(std::vector<int> us);
  void set_groups(std::vector<int> gs);
  void add_user(int u);
  void add_group(int g);
  /// Register/replace the display name of a file or dir object.
  void set_name(int id, std::string name);
  /// Display name of a file/dir object; objects created mid-search have no
  /// skeleton entry and render as "(created)".
  const std::string& name_of(int id) const;
  /// The shared skeleton (may be null when nothing was ever registered);
  /// exposed so tests can assert successor states intern it.
  const std::shared_ptr<const WorldSkeleton>& world() const { return world_; }
  /// Attach an existing shared skeleton. States rehydrated from a spill
  /// file (rosa/frontier.h) re-adopt the search's skeleton this way instead
  /// of each rebuilding a private copy; the skeleton is excluded from
  /// canonical()/hash(), so this never perturbs dedup identity.
  void set_world(std::shared_ptr<const WorldSkeleton> w) {
    world_ = std::move(w);
  }

  // --- digest-maintaining mutation -----------------------------------------
  //
  // The rewrite rules go through these so each successor's 64-bit digest is
  // derived from its parent's in O(1): the touched object's sub-hash is
  // XORed out, the field mutation applied, and the new sub-hash XORed in.
  // Code that mutates the public vectors directly (state construction,
  // tests) must call invalidate_hash() afterwards — or simply normalize(),
  // which invalidates too. search() can cross-check the incremental digest
  // against full_hash() via SearchLimits::check_hashes.

  /// Mutate the object with this id through `fn`, keeping the cached digest
  /// consistent. Returns fn's result. The object must exist.
  template <typename F>
  decltype(auto) mutate_proc(int id, F&& fn) {
    return mutate_impl(*find_proc(id), std::forward<F>(fn));
  }
  template <typename F>
  decltype(auto) mutate_file(int id, F&& fn) {
    return mutate_impl(*find_file(id), std::forward<F>(fn));
  }
  template <typename F>
  decltype(auto) mutate_dir(int id, F&& fn) {
    return mutate_impl(*find_dir(id), std::forward<F>(fn));
  }
  template <typename F>
  decltype(auto) mutate_sock(int id, F&& fn) {
    return mutate_impl(*find_sock(id), std::forward<F>(fn));
  }

  /// Append a new object (id must exceed every existing object id, as
  /// next_object_id() guarantees, so sortedness is preserved).
  void add_file(FileObj f);
  void add_sock(SockObj s);

  /// Drop the cached digest (after direct mutation of public fields).
  void invalidate_hash() const { digest_valid_ = false; }

  /// Keep object vectors sorted by id; call after construction. Invalidates
  /// the cached digest.
  void normalize();

  /// True when normalize() would be a no-op (successors built by the rules
  /// are normalized by construction; emit() verifies instead of re-sorting).
  bool is_normalized() const;

  /// Deterministic serialization — the reference dedup key. The search keys
  /// its seen-set on hash() and falls back to canonical_equal() on
  /// collisions; canonical() remains the ground truth those two must match
  /// (tests/rosa_hash_test.cpp). Covers exactly the mutable core: display
  /// names and the user/group pools are excluded (immutable during search),
  /// which also keeps query fingerprints (rosa/fingerprint.h) independent
  /// of this representation split.
  std::string canonical() const;

  /// 64-bit digest over exactly the fields canonical() serializes: an XOR
  /// of per-object splitmix64 sub-hashes plus the message-mask hash.
  /// Cached; mutation through the helpers above updates it incrementally.
  /// Guarantees: canonical()-equal states hash equal; distinct canonical
  /// forms collide only by hash accident, which the search resolves via
  /// canonical_equal().
  std::uint64_t hash() const;

  /// hash() recomputed from scratch, ignoring the cache — the reference the
  /// incremental digest is cross-checked against in debug mode.
  std::uint64_t full_hash() const;

  /// Per-object sub-hashes (exposed for the incremental-hash tests).
  static std::uint64_t proc_subhash(const ProcObj& p);
  static std::uint64_t file_subhash(const FileObj& f);
  static std::uint64_t dir_subhash(const DirObj& d);
  static std::uint64_t sock_subhash(const SockObj& s);

  /// Heap bytes owned by this state beyond sizeof(State) — vector and
  /// fd-set allocations. The shared skeleton is excluded (counted once per
  /// search, not per node).
  std::size_t heap_bytes() const;

  /// Multi-line rendering in a Maude-like object syntax (for reports and
  /// the worked example).
  std::string to_string() const;

 private:
  template <typename Obj, typename F>
  decltype(auto) mutate_impl(Obj& obj, F&& fn) {
    if (digest_valid_) digest_ ^= subhash_of(obj);
    struct Reapply {
      State* st;
      Obj* obj;
      ~Reapply() {
        if (st->digest_valid_) st->digest_ ^= subhash_of(*obj);
      }
    } reapply{this, &obj};
    return std::forward<F>(fn)(obj);
  }

  static std::uint64_t subhash_of(const ProcObj& p) { return proc_subhash(p); }
  static std::uint64_t subhash_of(const FileObj& f) { return file_subhash(f); }
  static std::uint64_t subhash_of(const DirObj& d) { return dir_subhash(d); }
  static std::uint64_t subhash_of(const SockObj& s) { return sock_subhash(s); }

  WorldSkeleton& mutable_world();

  std::shared_ptr<const WorldSkeleton> world_;
  /// Bitmask over the query's message list: 1 = still consumable.
  std::uint64_t msgs_remaining_ = 0;
  mutable std::uint64_t digest_ = 0;
  mutable bool digest_valid_ = false;
};

/// Field-by-field comparison of exactly the canonical() projection:
/// equivalent to a.canonical() == b.canonical() but with no allocation.
/// (Unlike operator==, ignores the shared skeleton — display names and the
/// immutable user/group pools — just as canonical() does.)
bool canonical_equal(const State& a, const State& b);

}  // namespace pa::rosa
