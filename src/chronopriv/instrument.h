// The ChronoPriv "pass": prepares a module for measured execution and runs
// it under an EpochTracker.
//
// The paper's ChronoPriv is an LLVM pass that inserts per-basic-block
// counting code; in this reproduction the VM natively counts executed
// instructions and the tracker attributes each one to the privilege state in
// force, which yields the same measurement without mutating the module.
// This file also exposes the static per-block counts (what the inserted
// counters would have added) so tests can cross-check dynamic totals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chronopriv/report.h"
#include "ir/module.h"
#include "os/kernel.h"

namespace pa::chronopriv {

/// Static countable-instruction size of every block, keyed by
/// (function, block index). Mirrors what the instrumentation pass computes
/// when choosing counter increments; excludes `unreachable`.
std::map<std::pair<std::string, int>, int> static_block_counts(
    const ir::Module& module);

/// Execute `module` as process `pid` under an EpochTracker and produce the
/// dynamic report. `args` are the program's argv-style inputs.
ChronoReport run_instrumented(os::Kernel& kernel, const ir::Module& module,
                              os::Pid pid,
                              std::vector<ir::RtValue> args = {},
                              const std::string& entry = "main",
                              long* exit_code = nullptr);

/// Variant driving a caller-supplied tracker, so the caller can configure
/// point capture or an epoch-change hook (filter enforcement) beforehand and
/// inspect epoch_points() afterwards.
ChronoReport run_instrumented_with(os::Kernel& kernel,
                                   const ir::Module& module, os::Pid pid,
                                   EpochTracker& tracker,
                                   std::vector<ir::RtValue> args = {},
                                   const std::string& entry = "main",
                                   long* exit_code = nullptr);

}  // namespace pa::chronopriv
