// ROSA transition rules: the syscall semantics, written against the SAME
// access-decision library (os/access.h) the SimOS kernel uses.
//
// A rule application takes a state and one not-yet-consumed message,
// instantiates any wildcard arguments from the state's object/user/group
// pools, and — if the modelled syscall would succeed — yields the successor
// state. Failing calls yield no transition (an attacker gains nothing from
// issuing a call that returns EPERM).
#pragma once

#include <string>
#include <vector>

#include "rosa/checker.h"
#include "rosa/message.h"
#include "rosa/state.h"

namespace pa::rosa {

/// A fully instantiated syscall (no wildcards left) — the machine-readable
/// form of one witness step. tests/witness_replay_test.cpp re-executes these
/// against the SimOS kernel to validate that ROSA's rules and the kernel
/// agree on entire traces, not just single calls.
struct Action {
  Sys sys = Sys::Open;
  int proc = 0;
  std::vector<int> args;
  caps::CapSet privs;

  std::string to_string() const;
};

struct Transition {
  State next;          // successor (message bit already cleared by caller)
  Action action;       // concrete instantiated syscall (witness step)
};

/// How strong the modelled attacker is (§X's future-work direction: attacks
/// weakened by deployed defenses).
enum class AttackerModel {
  /// The paper's default (§III): code-reuse attacks may issue the program's
  /// syscalls in any order and corrupt any argument (wildcards range over
  /// the object/user/group pools).
  Full,
  /// A control-flow-integrity-protected program: syscalls can only occur in
  /// program order (the attacker may skip calls but never reorder them).
  /// Arguments are still corruptible (non-control-data attacks).
  CfiOrdered,
  /// A data-flow-protected program: the attacker cannot corrupt syscall
  /// arguments — wildcard arguments are unusable, only the concrete values
  /// the program passes can occur. Ordering is still attacker-chosen.
  FixedArgs,
};

std::string_view attacker_model_name(AttackerModel m);

/// All successful applications of `msg` to `state`. Does not touch
/// `msgs_remaining`; the search layer owns message consumption.
/// Under FixedArgs, wildcard arguments yield no instantiations. Access
/// decisions are delegated to `checker` (Linux DAC + capabilities by
/// default; src/privmodels/ has Solaris and Capsicum checkers).
std::vector<Transition> apply_message(
    const State& state, const Message& msg,
    AttackerModel model = AttackerModel::Full,
    const AccessChecker& checker = linux_checker());

/// As above, but filling a caller-owned vector (cleared first) so the
/// search hot loop can reuse one scratch buffer's capacity across every
/// (state, message) pair instead of allocating per call.
void apply_message(const State& state, const Message& msg, AttackerModel model,
                   const AccessChecker& checker, std::vector<Transition>& out);

/// Ports tried when a Bind message's port argument is a wildcard.
const std::vector<int>& wildcard_port_pool();

}  // namespace pa::rosa
