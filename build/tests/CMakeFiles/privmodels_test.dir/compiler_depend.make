# Empty compiler generated dependencies file for privmodels_test.
# This may be replaced when dependencies are built.
