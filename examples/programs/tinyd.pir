; tinyd: the quickstart daemon as a loadable PrivIR file.
; Run:  tools/privanalyzer examples/programs/tinyd.pir
;
; !name: tinyd
; !description: demo daemon reading a protected config then serving
; !permitted: CapDacReadSearch,CapNetBindService
; !uid: 1000
; !gid: 1000
; !world: standard

func @read_config(0) {
entry:
  priv_raise {CapDacReadSearch}
  %0 = syscall open("/etc/shadow", 1)
  %1 = syscall read(%0, 128)
  %2 = syscall close(%0)
  priv_lower {CapDacReadSearch}
  ret 0
}

func @main(0) {
entry:
  %0 = call @read_config()
  %1 = syscall socket(0)
  priv_raise {CapNetBindService}
  %2 = syscall bind(%1, 443)
  priv_lower {CapNetBindService}
  %3 = mov 0
  br loop_head
loop_head:
  %4 = cmplt %3, 200
  condbr %4, loop_body, done
loop_body:
  %5 = syscall read(%1, 64)
  %6 = syscall write(%1, 64)
  nop
  nop
  nop
  nop
  %7 = add %3, 1
  %3 = mov %7
  br loop_head
done:
  %8 = syscall close(%1)
  exit 0
}
