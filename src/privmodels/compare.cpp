#include "privmodels/compare.h"

#include "support/error.h"

namespace pa::privmodels {

std::string_view model_name(Model m) {
  switch (m) {
    case Model::LinuxCaps: return "linux-caps";
    case Model::SolarisTranslated: return "solaris-translated";
    case Model::SolarisMinimized: return "solaris-minimized";
    case Model::Capsicum: return "capsicum";
  }
  return "?";
}

ModelRow evaluate_model(const attacks::ScenarioInput& input, Model model,
                        SolarisNeeds needs, RightSet capsicum_rights) {
  ModelRow row;
  row.model = model;

  attacks::ScenarioInput in = input;
  const rosa::AccessChecker* checker = nullptr;
  switch (model) {
    case Model::LinuxCaps:
      row.privileges = input.permitted.to_string();
      break;
    case Model::SolarisTranslated:
      in.permitted = from_linux(input.permitted);
      row.privileges = solaris_to_string(in.permitted);
      checker = &solaris_checker();
      break;
    case Model::SolarisMinimized:
      in.permitted = from_linux_minimized(input.permitted, needs);
      row.privileges = solaris_to_string(in.permitted);
      checker = &solaris_checker();
      break;
    case Model::Capsicum:
      in.permitted = capsicum_rights;
      row.privileges = rights_to_string(in.permitted);
      checker = &capsicum_checker();
      break;
  }

  for (std::size_t i = 0; i < attacks::modeled_attacks().size(); ++i) {
    rosa::Query q = attacks::build_attack_query(
        attacks::modeled_attacks()[i].id, in);
    q.checker = checker;  // nullptr = Linux default
    rosa::SearchResult r = rosa::search(q);
    switch (r.verdict) {
      case rosa::Verdict::Reachable:
        row.verdicts[i] = attacks::CellVerdict::Vulnerable;
        break;
      case rosa::Verdict::Unreachable:
        row.verdicts[i] = attacks::CellVerdict::Safe;
        break;
      case rosa::Verdict::ResourceLimit:
        row.verdicts[i] = attacks::CellVerdict::Timeout;
        break;
    }
  }
  return row;
}

std::vector<ModelRow> compare_models(const attacks::ScenarioInput& input,
                                     SolarisNeeds needs) {
  std::vector<ModelRow> rows;
  for (Model m : kAllModels) rows.push_back(evaluate_model(input, m, needs));
  return rows;
}

}  // namespace pa::privmodels
