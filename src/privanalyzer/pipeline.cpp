#include "privanalyzer/pipeline.h"

#include "ir/transforms.h"

namespace pa::privanalyzer {

double ProgramAnalysis::vulnerable_fraction(std::size_t attack) const {
  double total = 0.0;
  for (std::size_t i = 0; i < verdicts.size() && i < chrono.rows.size(); ++i)
    if (verdicts[i].verdicts[attack] == attacks::CellVerdict::Vulnerable)
      total += chrono.rows[i].fraction;
  return total;
}

rosa::SearchStats ProgramAnalysis::search_stats() const {
  rosa::SearchStats total;
  for (const attacks::EpochVerdicts& ev : verdicts)
    for (const rosa::SearchResult& r : ev.results) total.merge(r.stats);
  return total;
}

ir::Module transformed_module(const programs::ProgramSpec& spec,
                              const autopriv::Options& options) {
  // ProgramSpec factories are cheap; rebuilding gives us a fresh module to
  // transform without copying IR.
  ir::Module module = spec.module;
  autopriv::run_autopriv(module, "main", options);
  return module;
}

ProgramAnalysis analyze_program(const programs::ProgramSpec& spec,
                                const PipelineOptions& options) {
  ProgramAnalysis out;
  out.program = spec.name;

  // Stage 1: AutoPriv.
  ir::Module module = spec.module;
  out.autopriv_report = autopriv::run_autopriv(module, "main", options.autopriv);
  if (options.simplify_after_autopriv) ir::simplify(module);

  // Stage 2: ChronoPriv measured execution in the right world.
  os::Kernel kernel =
      options.world_factory
          ? options.world_factory()
          : (spec.refactored_world ? programs::make_refactored_world()
                                   : programs::make_standard_world());
  os::Pid pid = programs::spawn_program(kernel, spec);
  out.chrono = chronopriv::run_instrumented(kernel, module, pid, spec.args,
                                            "main", &out.exit_code);

  // Stage 3: one ROSA query per (epoch x attack), fanned out across
  // options.rosa_threads workers (the queries are independent; results are
  // deterministic and identical to the serial order).
  if (options.run_rosa) {
    const std::vector<std::string> syscalls = spec.syscalls_used();
    std::vector<attacks::ScenarioInput> inputs;
    inputs.reserve(out.chrono.rows.size());
    for (const chronopriv::EpochRow& row : out.chrono.rows)
      inputs.push_back(attacks::scenario_from_epoch(
          row, syscalls, spec.scenario_extra_users,
          spec.scenario_extra_groups));
    out.verdicts = attacks::analyze_epochs(out.chrono.rows, inputs,
                                           options.rosa_limits,
                                           options.rosa_threads);
  }
  return out;
}

}  // namespace pa::privanalyzer
