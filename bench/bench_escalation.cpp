// Adaptive budget escalation on the Table-3 query set: start every query at
// a deliberately starved state budget and sweep the escalation ladder depth,
// reporting how many presumed-invulnerable (ResourceLimit) cells each extra
// doubling round converts into definite verdicts and what the retries cost
// in re-explored states versus a single-shot generous budget. This is the
// trade the pipeline's `--escalate-rounds` flag buys: a small budget for the
// easy majority, doubling only where the search actually starves.
#include <chrono>
#include <iostream>

#include "privanalyzer/efficacy.h"
#include "support/str.h"

using namespace pa;

namespace {

struct Sweep {
  double wall = 0.0;
  std::size_t presumed = 0;   // ResourceLimit verdicts after the ladder
  std::size_t escalated = 0;  // queries that needed >= 1 retry
  rosa::SearchStats stats;    // work accumulated across every attempt
};

Sweep run_once(const std::vector<rosa::Query>& queries,
               const rosa::SearchLimits& limits, unsigned rounds) {
  Sweep s;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<rosa::SearchResult> results = rosa::run_queries(
      queries, limits, 1, rosa::EscalationPolicy{rounds, 2.0});
  s.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count();
  for (const rosa::SearchResult& r : results) {
    if (r.verdict == rosa::Verdict::ResourceLimit) ++s.presumed;
    if (r.stats.escalations > 0) ++s.escalated;
    s.stats.merge(r.stats);
  }
  return s;
}

}  // namespace

int main() {
  privanalyzer::PipelineOptions chrono_only;
  chrono_only.run_rosa = false;
  std::vector<privanalyzer::ProgramAnalysis> analyses =
      privanalyzer::analyze_baseline(chrono_only);
  std::vector<programs::ProgramSpec> specs = programs::all_baseline_programs();

  std::vector<rosa::Query> queries;
  for (std::size_t p = 0; p < specs.size(); ++p) {
    const auto syscalls = specs[p].syscalls_used();
    for (const chronopriv::EpochRow& row : analyses[p].chrono.rows) {
      attacks::ScenarioInput in = attacks::scenario_from_epoch(
          row, syscalls, specs[p].scenario_extra_users,
          specs[p].scenario_extra_groups);
      // Widen the wildcard pools (the Figs. 10-11 methodology) so a starved
      // base budget is meaningfully starved, not merely one doubling short.
      for (int i = 0; i < 24; ++i) {
        in.extra_users.push_back(5000 + i);
        in.extra_groups.push_back(6000 + i);
      }
      for (const attacks::AttackInfo& a : attacks::modeled_attacks())
        queries.push_back(attacks::build_attack_query(a.id, in));
    }
  }

  rosa::SearchLimits starved;
  starved.max_states = 64;
  std::cout << "Table-3 query set, base budget max_states="
            << starved.max_states << " (deliberately starved), "
            << queries.size() << " queries\n\n";
  std::cout << "  " << str::pad_right("rounds", 9)
            << str::pad_left("presumed", 10) << str::pad_left("escalated", 11)
            << str::pad_left("states", 12) << str::pad_left("wall", 12)
            << "\n";
  for (unsigned rounds : {0u, 2u, 4u, 6u, 8u, 10u, 12u}) {
    const Sweep s = run_once(queries, starved, rounds);
    std::cout << "  " << str::pad_right(std::to_string(rounds), 9)
              << str::pad_left(std::to_string(s.presumed), 10)
              << str::pad_left(std::to_string(s.escalated), 11)
              << str::pad_left(std::to_string(s.stats.states), 12)
              << str::pad_left(str::cat(str::fixed(s.wall * 1000, 1), " ms"),
                               12)
              << "\n";
  }

  // The comparison point: no ladder, every query gets the generous budget
  // the deepest ladder rung could reach (64 * 2^12).
  rosa::SearchLimits generous;
  generous.max_states = starved.max_states << 12;
  const Sweep flat = run_once(queries, generous, 0);
  std::cout << "\n  single-shot max_states=" << generous.max_states << ": "
            << flat.presumed << " presumed, " << flat.stats.states
            << " states, " << str::fixed(flat.wall * 1000, 1) << " ms\n"
            << "  (the ladder's re-explored-state overhead is the gap in the "
               "states column;\n  its win is paying the big budget only where "
               "the search starved)\n";
  return 0;
}
