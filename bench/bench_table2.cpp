// Regenerates the paper's Table II: the evaluation-program inventory.
// The paper reports SLOC of the C sources; the analogous size measure for
// the PrivIR models (static countable instructions) is reported alongside
// launch privilege sets and workloads.
#include <iostream>

#include "privanalyzer/render.h"
#include "support/str.h"

using namespace pa;

int main() {
  auto specs = programs::all_baseline_programs();
  std::cout << privanalyzer::render_program_table(specs) << "\n";

  std::cout << "Launch configuration (paper §VII-B: programs start with the "
               "correct permitted set,\nnot as setuid-root executables):\n";
  for (const programs::ProgramSpec& s : specs) {
    std::cout << "  " << str::pad_right(s.name, 10) << "uid "
              << s.launch_creds.uid.to_string() << "  permitted {"
              << s.launch_permitted.to_string() << "}\n";
    std::cout << str::pad_right("", 12) << "syscalls:";
    for (const std::string& sys : s.syscalls_used()) std::cout << " " << sys;
    std::cout << "\n";
  }

  std::cout << "\nWorkloads (paper §VII-B):\n"
               "  ping    10 echo requests to the localhost interface\n"
               "  passwd  change the invoking user's password\n"
               "  su      run `ls` as another user\n"
               "  thttpd  ApacheBench, concurrency 1, one 1 MB fetch\n"
               "  sshd    foreground daemon, scp of one 1 MB file\n";
  return 0;
}
