// Regenerates the paper's Table III: for each of the five baseline
// programs, the ChronoPriv privilege epochs (privileges, uids, gids,
// dynamic instruction counts) and the four ROSA attack verdicts per epoch.
//
// Expected shape versus the paper: ping safe everywhere; thttpd safe for
// ~90%; passwd and su vulnerable to attacks 1/2/4 for most of execution;
// sshd vulnerable for essentially all of it; attack 3 only where
// CAP_NET_BIND_SERVICE is still permitted.
#include <iostream>

#include "privanalyzer/export.h"
#include "privanalyzer/render.h"
#include "support/str.h"

using namespace pa;

int main() {
  std::cout << privanalyzer::render_attack_table() << "\n";

  privanalyzer::PipelineOptions opts;
  opts.rosa_limits.max_states = 1'000'000;

  std::vector<privanalyzer::ProgramAnalysis> analyses =
      privanalyzer::analyze_baseline(opts);

  std::cout << privanalyzer::render_efficacy_table(
      analyses,
      "Table III: Security Efficacy Results (V vulnerable / x safe / T "
      "limit)");

  std::cout << "\nHeadline numbers (paper: passwd and su retain the ability "
               "to read+write /dev/mem\nfor 97% and 88% of execution):\n";
  for (const privanalyzer::ProgramAnalysis& a : analyses) {
    privanalyzer::ExposureSummary s = privanalyzer::exposure_of(a);
    std::cout << "  " << a.program << ": devmem-read "
              << str::percent(s.devmem_read) << ", devmem-write "
              << str::percent(s.devmem_write) << ", any-attack "
              << str::percent(s.any_attack) << "\n";
  }
  std::cout << "\nCSV (for plotting):\n"
            << privanalyzer::efficacy_to_csv(analyses);
  return 0;
}
