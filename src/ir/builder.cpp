#include "ir/builder.h"

#include "support/error.h"
#include "support/str.h"

namespace pa::ir {

IRBuilder& IRBuilder::begin_function(std::string name, int num_params,
                                     std::string entry_label) {
  PA_CHECK(fn_ == nullptr, "begin_function: previous function not ended");
  fn_ = &module_->add_function(std::move(name), num_params);
  next_reg_ = num_params;
  cur_block_ = fn_->add_block(std::move(entry_label));
  return *this;
}

IRBuilder& IRBuilder::declare_block(std::string label) {
  PA_CHECK(fn_ != nullptr, "no active function");
  fn_->add_block(std::move(label));
  return *this;
}

IRBuilder& IRBuilder::at(std::string label) {
  PA_CHECK(fn_ != nullptr, "no active function");
  auto idx = fn_->block_index(label);
  cur_block_ = idx ? *idx : fn_->add_block(std::move(label));
  return *this;
}

Function& IRBuilder::end_function() {
  PA_CHECK(fn_ != nullptr, "no active function");
  fn_->resolve_labels();
  Function& done = *fn_;
  fn_ = nullptr;
  cur_block_ = -1;
  return done;
}

bool IRBuilder::current_block_terminated() const {
  PA_CHECK(fn_ != nullptr && cur_block_ >= 0, "no insertion point");
  return fn_->block(cur_block_).terminator() != nullptr;
}

int IRBuilder::param(int idx) const {
  PA_CHECK(fn_ != nullptr && idx >= 0 && idx < fn_->num_params(),
           "bad parameter index");
  return idx;
}

BasicBlock& IRBuilder::cur_block() {
  PA_CHECK(fn_ != nullptr && cur_block_ >= 0, "no insertion point");
  return fn_->block(cur_block_);
}

Instruction& IRBuilder::append(Instruction inst) {
  BasicBlock& bb = cur_block();
  PA_CHECK(bb.terminator() == nullptr,
           str::cat("appending to terminated block ", bb.label, " in @",
                    fn_->name()));
  bb.instructions.push_back(std::move(inst));
  return bb.instructions.back();
}

int IRBuilder::fresh_reg() { return next_reg_++; }

int IRBuilder::mov(Operand v) {
  int d = fresh_reg();
  append({.op = Opcode::Mov, .dest = d, .operands = {v}});
  return d;
}

void IRBuilder::mov_to(int dst, Operand v) {
  PA_CHECK(dst >= 0 && dst < next_reg_, "mov_to: register not allocated");
  append({.op = Opcode::Mov, .dest = dst, .operands = {v}});
}

int IRBuilder::binop(Opcode op, Operand a, Operand b) {
  int d = fresh_reg();
  append({.op = op, .dest = d, .operands = {a, b}});
  return d;
}

int IRBuilder::not_(Operand a) {
  int d = fresh_reg();
  append({.op = Opcode::Not, .dest = d, .operands = {a}});
  return d;
}

void IRBuilder::br(std::string label) {
  append({.op = Opcode::Br, .target_labels = {std::move(label)}});
}

void IRBuilder::condbr(Operand cond, std::string if_true,
                       std::string if_false) {
  append({.op = Opcode::CondBr,
          .operands = {cond},
          .target_labels = {std::move(if_true), std::move(if_false)}});
}

void IRBuilder::ret() { append({.op = Opcode::Ret}); }

void IRBuilder::ret(Operand v) {
  append({.op = Opcode::Ret, .operands = {v}});
}

void IRBuilder::exit(Operand code) {
  append({.op = Opcode::Exit, .operands = {code}});
}

void IRBuilder::unreachable() { append({.op = Opcode::Unreachable}); }

int IRBuilder::call(std::string callee, std::vector<Operand> args) {
  int d = fresh_reg();
  append({.op = Opcode::Call,
          .dest = d,
          .operands = std::move(args),
          .symbol = std::move(callee)});
  return d;
}

int IRBuilder::callind(Operand callee, std::vector<Operand> args) {
  int d = fresh_reg();
  std::vector<Operand> ops;
  ops.reserve(args.size() + 1);
  ops.push_back(callee);
  for (Operand& a : args) ops.push_back(std::move(a));
  append({.op = Opcode::CallInd, .dest = d, .operands = std::move(ops)});
  return d;
}

int IRBuilder::funcaddr(std::string name) {
  int d = fresh_reg();
  append({.op = Opcode::FuncAddr,
          .dest = d,
          .operands = {Operand::func(std::move(name))}});
  return d;
}

int IRBuilder::syscall(std::string name, std::vector<Operand> args) {
  int d = fresh_reg();
  append({.op = Opcode::Syscall,
          .dest = d,
          .operands = std::move(args),
          .symbol = std::move(name)});
  return d;
}

void IRBuilder::priv_raise(caps::CapSet set) {
  append({.op = Opcode::PrivRaise, .operands = {Operand::capset(set)}});
}

void IRBuilder::priv_lower(caps::CapSet set) {
  append({.op = Opcode::PrivLower, .operands = {Operand::capset(set)}});
}

void IRBuilder::priv_remove(caps::CapSet set) {
  append({.op = Opcode::PrivRemove, .operands = {Operand::capset(set)}});
}

void IRBuilder::nop(int count) {
  for (int k = 0; k < count; ++k) append({.op = Opcode::Nop});
}

}  // namespace pa::ir
