file(REMOVE_RECURSE
  "libpa_chronopriv.a"
)
