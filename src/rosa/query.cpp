#include "rosa/query.h"

#include <algorithm>

#include "os/access.h"
#include "support/str.h"

namespace pa::rosa {
namespace {

// Every shipped builder inspects fdsets, sockets, or running flags — never
// a uid or gid — so all are identity-invariant with an exhaustive touch
// set, unlocking symmetry and partial-order reduction (rosa/canon.h,
// rosa/independence.h) for the queries they describe.
GoalInfo touch(std::vector<int> fd_procs, std::vector<int> run_procs,
               std::vector<int> sock_procs) {
  GoalInfo info;
  info.identity_invariant = true;
  info.touch_known = true;
  info.fd_procs = std::move(fd_procs);
  info.run_procs = std::move(run_procs);
  info.sock_procs = std::move(sock_procs);
  return info;
}

}  // namespace

Goal goal_file_in_rdfset(int proc, int file) {
  return Goal(
             [proc, file](const State& st) {
               const ProcObj* p = st.find_proc(proc);
               return p && p->rdfset.contains(file);
             },
             str::cat("rdfset:", proc, ":", file))
      .with_info(touch({proc}, {}, {}));
}

Goal goal_file_in_wrfset(int proc, int file) {
  return Goal(
             [proc, file](const State& st) {
               const ProcObj* p = st.find_proc(proc);
               return p && p->wrfset.contains(file);
             },
             str::cat("wrfset:", proc, ":", file))
      .with_info(touch({proc}, {}, {}));
}

Goal goal_privileged_port_bound(int proc) {
  return Goal(
             [proc](const State& st) {
               for (const SockObj& s : st.socks)
                 if (s.owner_proc == proc && s.port != -1 &&
                     s.port <= os::kPrivilegedPortMax)
                   return true;
               return false;
             },
             str::cat("privport:", proc))
      .with_info(touch({}, {}, {proc}));
}

Goal goal_proc_terminated(int victim) {
  return Goal(
             [victim](const State& st) {
               const ProcObj* p = st.find_proc(victim);
               return p && !p->running;
             },
             str::cat("terminated:", victim))
      .with_info(touch({}, {victim}, {}));
}

namespace {

/// Composite key, or "" (uncacheable) when either operand is unkeyed.
std::string compose_key(std::string_view op, const Goal& a, const Goal& b) {
  if (a.cache_key().empty() || b.cache_key().empty()) return {};
  return str::cat(op, "(", a.cache_key(), ",", b.cache_key(), ")");
}

/// Composite annotations: invariance needs both operands invariant, the
/// touch sets union (and are exhaustive only when both operands' are).
GoalInfo compose_info(const Goal& a, const Goal& b) {
  const auto merge = [](std::vector<int> x, const std::vector<int>& y) {
    x.insert(x.end(), y.begin(), y.end());
    std::sort(x.begin(), x.end());
    x.erase(std::unique(x.begin(), x.end()), x.end());
    return x;
  };
  GoalInfo info;
  info.identity_invariant =
      a.info().identity_invariant && b.info().identity_invariant;
  info.touch_known = a.info().touch_known && b.info().touch_known;
  info.fd_procs = merge(a.info().fd_procs, b.info().fd_procs);
  info.run_procs = merge(a.info().run_procs, b.info().run_procs);
  info.sock_procs = merge(a.info().sock_procs, b.info().sock_procs);
  return info;
}

}  // namespace

Goal goal_and(Goal a, Goal b) {
  std::string key = compose_key("and", a, b);
  GoalInfo info = compose_info(a, b);
  return Goal(
             [a = std::move(a), b = std::move(b)](const State& st) {
               return a(st) && b(st);
             },
             std::move(key))
      .with_info(std::move(info));
}

Goal goal_or(Goal a, Goal b) {
  std::string key = compose_key("or", a, b);
  GoalInfo info = compose_info(a, b);
  return Goal(
             [a = std::move(a), b = std::move(b)](const State& st) {
               return a(st) || b(st);
             },
             std::move(key))
      .with_info(std::move(info));
}

}  // namespace pa::rosa
