// Round-robin multi-process execution: several interpreters sharing one
// SimOS kernel, interleaved at instruction granularity. This is what makes
// genuine privilege-separated designs runnable (a privileged monitor
// process next to an unprivileged worker) and lets tests exercise
// cross-process signalling for real.
#pragma once

#include <memory>
#include <vector>

#include "vm/interpreter.h"

namespace pa::vm {

class Scheduler {
 public:
  explicit Scheduler(os::Kernel& kernel) : kernel_(&kernel) {}

  /// Add a process: `pid` runs `entry` from `module` with `args`.
  /// The module reference must outlive the scheduler.
  Interpreter& add(const ir::Module& module, os::Pid pid,
                   const std::string& entry = "main",
                   std::vector<ir::RtValue> args = {});

  /// Run all processes round-robin (`quantum` instructions per turn) until
  /// every one has finished. Returns total instructions executed.
  std::uint64_t run_all(std::uint64_t quantum = 64);

  /// Step every live process by at most `quantum` instructions.
  /// Returns true while at least one process is still running.
  bool step_round(std::uint64_t quantum = 64);

  std::size_t process_count() const { return tasks_.size(); }
  Interpreter& interpreter(std::size_t i) { return *tasks_[i].interp; }
  long exit_code(std::size_t i) const { return tasks_[i].interp->exit_code(); }

 private:
  struct Task {
    std::unique_ptr<Interpreter> interp;
  };

  os::Kernel* kernel_;
  std::vector<Task> tasks_;
};

}  // namespace pa::vm
