file(REMOVE_RECURSE
  "libpa_support.a"
)
