// Call graph over a PrivIR module, matching AutoPriv's construction: direct
// calls contribute precise edges; an indirect call contributes edges to
// EVERY address-taken function (the conservative over-approximation the
// paper identifies as the reason sshd's privileges stay live).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/module.h"

namespace pa::ir {

/// How indirect calls are resolved.
enum class IndirectCallPolicy {
  /// Targets = all address-taken functions (AutoPriv's behaviour; sound).
  Conservative,
  /// Targets = none (unsound; used only by the ablation benchmark to show
  /// what a perfectly precise call graph would buy).
  AssumeNone,
};

class CallGraph {
 public:
  static CallGraph build(const Module& module,
                         IndirectCallPolicy policy =
                             IndirectCallPolicy::Conservative);

  /// Direct + resolved-indirect callees of `fname`.
  const std::set<std::string>& callees(const std::string& fname) const;

  /// All functions reachable from `root` (including `root`).
  std::set<std::string> reachable_from(const std::string& root) const;

  /// Functions registered as signal handlers anywhere in the module
  /// (operands of `syscall signal(signo, @handler)` instructions).
  const std::set<std::string>& signal_handlers() const { return handlers_; }

  /// Address-taken functions (indirect-call target set).
  const std::set<std::string>& address_taken() const { return address_taken_; }

  bool has_indirect_call(const std::string& fname) const {
    return indirect_callers_.contains(fname);
  }

 private:
  std::map<std::string, std::set<std::string>> edges_;
  std::set<std::string> handlers_;
  std::set<std::string> address_taken_;
  std::set<std::string> indirect_callers_;
  std::set<std::string> empty_;
};

}  // namespace pa::ir
