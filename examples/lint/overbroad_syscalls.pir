; PrivLint fixture: seeded overbroad-epoch-syscalls defect (and nothing
; else). Both capabilities are raised, used, and lowered, so the classic
; hygiene passes stay quiet — but the final priv_remove drops only CapKill.
; CapChown stays permitted for the rest of execution even though nothing
; raises it again, while a chown syscall remains reachable: a hijacked
; thread could raise CapChown and drive it. The remove should cover both
; capabilities (or the epoch should run under an enforced syscall filter).
;
; !name: overbroad_syscalls
; !description: lint fixture - permitted-but-dead cap with gated syscall reachable
; !permitted: CapChown,CapKill
; !uid: 1000
; !gid: 1000

func @main(0) {
entry:
  %0 = syscall open("/tmp/scratch", 2)
  priv_raise {CapChown}
  %1 = syscall chown(%0, 0)
  priv_lower {CapChown}
  priv_raise {CapKill}
  %2 = syscall kill(7, 15)
  priv_lower {CapKill}
  priv_remove {CapKill}
  %3 = syscall chown(%0, 1000)
  %4 = syscall close(%0)
  exit 0
}
