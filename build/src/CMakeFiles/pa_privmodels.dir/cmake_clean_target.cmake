file(REMOVE_RECURSE
  "libpa_privmodels.a"
)
