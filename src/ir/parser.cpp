#include "ir/parser.h"

#include <cctype>

#include "support/error.h"
#include "support/str.h"

namespace pa::ir {
namespace {

/// Cursor over one line of input.
class Cursor {
 public:
  Cursor(std::string_view s, int line) : s_(s), line_(line) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) err(str::cat("expected '", c, "'"));
  }

  /// [A-Za-z0-9_.] word.
  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_' || s_[pos_] == '.'))
      ++pos_;
    if (pos_ == start) err("expected identifier");
    return std::string(s_.substr(start, pos_ - start));
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && !std::isdigit(
                              static_cast<unsigned char>(s_[start]))))
      err("expected integer");
    return std::stoll(std::string(s_.substr(start, pos_ - start)));
  }

  std::string quoted() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: err(str::cat("bad escape \\", e));
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) err("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  [[noreturn]] void err(std::string message) {
    throw ParseError(line_,
                     str::cat("parse error at line ", line_, ": ", message,
                              " near `", s_.substr(pos_), "`"));
  }

  int line() const { return line_; }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  int line_;
};

Operand parse_operand(Cursor& c) {
  switch (c.peek()) {
    case '%': {
      c.expect('%');
      return Operand::reg(static_cast<int>(c.integer()));
    }
    case '"':
      return Operand::str(c.quoted());
    case '@': {
      c.expect('@');
      return Operand::func(c.word());
    }
    case '{': {
      c.expect('{');
      std::string names;
      while (c.peek() != '}' && c.peek() != '\0') {
        if (!names.empty()) names += ' ';
        if (c.peek() == ',') {
          c.expect(',');
          names += ',';
          continue;
        }
        if (c.peek() == '(') {  // "(empty)"
          c.expect('(');
          names += '(' + c.word();
          c.expect(')');
          names += ')';
          continue;
        }
        names += c.word();
      }
      c.expect('}');
      // Remove the spaces we inserted between words around commas.
      std::string squashed;
      for (char ch : names)
        if (ch != ' ') squashed += ch;
      auto set = caps::CapSet::parse(squashed);
      if (!set) c.err(str::cat("bad capability set {", squashed, "}"));
      return Operand::capset(*set);
    }
    default:
      return Operand::imm(c.integer());
  }
}

std::vector<Operand> parse_arg_list(Cursor& c) {
  std::vector<Operand> args;
  c.expect('(');
  if (c.peek() != ')') {
    args.push_back(parse_operand(c));
    while (c.consume(',')) args.push_back(parse_operand(c));
  }
  c.expect(')');
  return args;
}

Instruction parse_instruction(Cursor& c) {
  Instruction inst;
  if (c.peek() == '%') {
    c.expect('%');
    inst.dest = static_cast<int>(c.integer());
    c.expect('=');
  }
  std::string op_word = c.word();
  auto op = parse_opcode(op_word);
  if (!op) c.err(str::cat("unknown opcode '", op_word, "'"));
  inst.op = *op;

  switch (inst.op) {
    case Opcode::Call:
      c.expect('@');
      inst.symbol = c.word();
      inst.operands = parse_arg_list(c);
      break;
    case Opcode::CallInd: {
      Operand callee = parse_operand(c);
      if (callee.kind() != Operand::Kind::Reg)
        c.err("callind callee must be a register");
      std::vector<Operand> args = parse_arg_list(c);
      inst.operands.push_back(callee);
      for (Operand& a : args) inst.operands.push_back(std::move(a));
      break;
    }
    case Opcode::Syscall:
      inst.symbol = c.word();
      inst.operands = parse_arg_list(c);
      break;
    case Opcode::Br:
      inst.target_labels.push_back(c.word());
      break;
    case Opcode::CondBr:
      inst.operands.push_back(parse_operand(c));
      c.expect(',');
      inst.target_labels.push_back(c.word());
      c.expect(',');
      inst.target_labels.push_back(c.word());
      break;
    case Opcode::Ret:
      if (!c.at_end()) inst.operands.push_back(parse_operand(c));
      break;
    case Opcode::Unreachable:
    case Opcode::Nop:
      break;
    default: {
      if (!c.at_end()) {
        inst.operands.push_back(parse_operand(c));
        while (c.consume(',')) inst.operands.push_back(parse_operand(c));
      }
      break;
    }
  }
  if (!c.at_end()) c.err("trailing tokens after instruction");
  return inst;
}

}  // namespace

ParseError::ParseError(int line, std::string message)
    : Error(std::move(message)), line_(line) {}

Module parse(std::string_view text, std::string module_name) {
  Module module(std::move(module_name));
  Function* fn = nullptr;
  int cur_block = -1;

  int line_no = 0;
  for (std::string& raw : str::split(text, '\n', /*keep_empty=*/true)) {
    ++line_no;
    if (auto pos = raw.find(';'); pos != std::string::npos) raw.resize(pos);
    std::string_view line = str::trim(raw);
    if (line.empty()) continue;

    Cursor c(line, line_no);
    if (line.front() == '}') {
      if (!fn) c.err("'}' outside a function");
      fn = nullptr;
      cur_block = -1;
      continue;
    }
    if (str::starts_with(line, "func")) {
      std::string kw = c.word();
      if (kw != "func") c.err("expected 'func'");
      c.expect('@');
      std::string name = c.word();
      c.expect('(');
      int nparams = static_cast<int>(c.integer());
      c.expect(')');
      c.expect('{');
      fn = &module.add_function(std::move(name), nparams);
      cur_block = -1;
      continue;
    }
    if (line.back() == ':' && line.find(' ') == std::string_view::npos &&
        line.find('=') == std::string_view::npos) {
      if (!fn) c.err("label outside a function");
      cur_block = fn->add_block(std::string(line.substr(0, line.size() - 1)));
      continue;
    }
    if (!fn) c.err("instruction outside a function");
    if (cur_block < 0) c.err("instruction before first label");
    fn->block(cur_block).instructions.push_back(parse_instruction(c));
  }
  if (fn)
    throw ParseError(line_no,
                     str::cat("parse error at line ", line_no,
                              ": unterminated function at end of input"));

  module.resolve_labels();
  module.recompute_address_taken();
  return module;
}

std::optional<Module> try_parse(std::string_view text, std::string* error,
                                std::string module_name) {
  try {
    return parse(text, std::move(module_name));
  } catch (const Error& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace pa::ir
