// The daemon soak test: arm every registered fault point, one at a time,
// while N concurrent clients hammer a live privanalyzerd with Table-II
// programs. The robustness contract under each injected fault:
//
//   * every submitted job reaches a terminal status (done / failed /
//     cancelled / timeout / rejected) — nothing is silently lost;
//   * the server never crashes and never hangs (run() returns from the
//     final drain; ctest's timeout is the backstop);
//   * after the fault, a fresh client's ping and a fresh job succeed.
//
// The fault registry is process-global and single-shot, so an armed
// daemon.read / daemon.write point may just as well fire inside one of OUR
// client sockets as inside the server — exactly one call anywhere is
// disturbed per point. Client workers therefore treat any exception as a
// recoverable event: reconnect and retry the submit, or (once a job id is
// known) poll its status over fresh connections until it turns terminal —
// which is itself the reconnect-after-connection-loss story the global job
// table exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.h"
#include "daemon/job.h"
#include "daemon/server.h"
#include "support/faultpoint.h"

namespace pa::daemon {
namespace {

namespace fp = support::faultpoint;

constexpr int kClients = 4;
constexpr int kJobsPerClient = 2;
const char* kTableII[] = {"passwd", "su", "ping", "thttpd", "sshd"};

bool terminal_name(const std::string& s) {
  return s == "done" || s == "failed" || s == "cancelled" || s == "timeout" ||
         s == "rejected";
}

JobRequest small_job(int salt) {
  JobRequest req;
  req.kind = "builtin";
  req.source = kTableII[salt % (sizeof kTableII / sizeof *kTableII)];
  req.name = req.source;
  req.max_states = 5'000;  // keep 11 points x 8 jobs fast
  return req;
}

/// Poll `job_id` over fresh connections until it reports a terminal state.
/// Used after the worker's own connection was reaped under an injected
/// fault; returns the terminal name or "lost" after ~20s of trying.
std::string poll_until_terminal(const std::string& socket_path,
                                std::uint64_t job_id) {
  for (int i = 0; i < 200; ++i) {
    try {
      Client probe(socket_path);
      std::string state = probe.status(job_id).state;
      if (terminal_name(state)) return state;
    } catch (const std::exception&) {
      // The one injected fault may hit this probe too; just try again.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return "lost";
}

/// Submit one job and ride it to a terminal state, surviving connection
/// loss. Returns the terminal state name, or "undelivered" if three whole
/// submit attempts never got an answer (more disruption than one single-shot
/// fault can cause).
std::string run_one_job(const std::string& socket_path, const JobRequest& req) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::uint64_t job_id = 0;
    try {
      Client client(socket_path);
      SubmitReply reply = client.submit(req);
      if (!reply.accepted) return "rejected";
      job_id = reply.job_id;
      return client.wait_result(job_id).state;
    } catch (const std::exception&) {
      // Admitted but the connection died: the job still runs; poll it.
      if (job_id != 0) return poll_until_terminal(socket_path, job_id);
      // Not admitted yet: reconnect and resubmit.
    }
  }
  return "undelivered";
}

TEST(DaemonSoakTest, EveryFaultPointUnderConcurrentClients) {
  fp::disarm_all();
  const std::vector<std::string> points = fp::registered_points();
  ASSERT_FALSE(points.empty());

  for (const std::string& point : points) {
    SCOPED_TRACE(point);

    ServerOptions opts;
    opts.socket_path =
        ::testing::TempDir() + "/pad_soak_" + std::to_string(
            &point - points.data()) + ".sock";
    std::remove(opts.socket_path.c_str());
    opts.workers = 2;
    opts.max_queue = 32;
    opts.default_deadline_secs = 20.0;
    // A persistent cache with per-job checkpoints keeps the rosa.cache_store
    // retry path in the loop as well.
    opts.cache_file = opts.socket_path + ".cache";
    std::remove(opts.cache_file.c_str());
    opts.checkpoint_jobs = 1;

    auto server = std::make_unique<Server>(opts);
    std::thread runner([&] { server->run(); });

    fp::arm(point);

    std::mutex mu;
    std::vector<std::string> outcomes;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int j = 0; j < kJobsPerClient; ++j) {
          std::string state =
              run_one_job(opts.socket_path, small_job(c * kJobsPerClient + j));
          std::lock_guard<std::mutex> lock(mu);
          outcomes.push_back(state);
        }
      });
    }
    for (std::thread& t : clients) t.join();

    // Every job reached a terminal status, under whichever fault was armed.
    ASSERT_EQ(outcomes.size(),
              static_cast<std::size_t>(kClients * kJobsPerClient));
    for (const std::string& state : outcomes)
      EXPECT_TRUE(terminal_name(state)) << "job ended as '" << state << "'";

    // The daemon-side points sit on paths this load certainly exercises
    // (accepts, reads, writes happen constantly), so the armed point must
    // have fired (single-shot arming disarms on fire).
    if (point.starts_with("daemon.")) {
      EXPECT_FALSE(fp::armed(point)) << "point never fired under load";
    }
    fp::disarm_all();

    // Post-fault: the server keeps serving, and new work succeeds.
    {
      Client after(opts.socket_path);
      EXPECT_TRUE(after.ping());
      JobRequest req = small_job(0);
      SubmitReply reply = after.submit(req);
      ASSERT_TRUE(reply.accepted) << reply.reason;
      EXPECT_EQ(after.wait_result(reply.job_id).state, "done");
    }

    // And it still drains cleanly: run() returning is the no-hang proof.
    server->request_shutdown(false);
    runner.join();
    std::remove(opts.cache_file.c_str());
    std::remove(opts.socket_path.c_str());
  }
}

}  // namespace
}  // namespace pa::daemon
