// The four privilege-escalation attacks of the paper's Table I, expressed as
// ROSA queries. All four queries of an epoch share ONE union world — the
// victim, the critical server, /dev/mem and the /etc decoys, and a single
// union message list; §VII-A's per-attack tailoring ("the subset of the
// program's syscalls relevant to it") is expressed through Query::msg_mask,
// which selects the attack's fireable messages out of the shared list. The
// shared world is what lets rosa::run_queries fuse an epoch's queries into
// one exploration. Every message may use the epoch's entire permitted
// privilege set — the paper's strong attack model.
#pragma once

#include <string>
#include <vector>

#include "caps/priv_state.h"
#include "rosa/search.h"

namespace pa::attacks {

enum class AttackId {
  ReadDevMem = 1,         // open /dev/mem for reading: steal any data
  WriteDevMem = 2,        // open /dev/mem for writing: corrupt any data
  BindPrivilegedPort = 3, // masquerade as a trusted server
  KillServer = 4,         // SIGKILL a critical server owned by another user
};

struct AttackInfo {
  AttackId id;
  std::string name;
  std::string description;
};

/// Table I.
const std::vector<AttackInfo>& modeled_attacks();

// Fixed object ids used in attack scenarios.
inline constexpr int kVictimProc = 1;   // the analyzed (exploited) program
inline constexpr int kServerProc = 2;   // the critical server (attack 4)
inline constexpr int kDevMemFile = 3;   // /dev/mem
inline constexpr int kDevDir = 4;       // /dev
// Decoy objects: the wildcard file arguments of open/chown/chmod/unlink/
// rename range over every file object in the configuration, so the standard
// /etc files are included as in the paper's inputs.
inline constexpr int kShadowFile = 5;   // /etc/shadow
inline constexpr int kPasswdFile = 6;   // /etc/passwd
inline constexpr int kEtcDir = 7;       // /etc
inline constexpr int kEtcDir2 = 8;      // second /etc entry (for /etc/passwd)

// The world the attacks run in (Ubuntu-like): /dev/mem is root:kmem 0640 and
// the critical server runs as a dedicated daemon user.
inline constexpr int kServerUid = 109;
inline constexpr int kKmemGid = 15;

/// Everything PrivAnalyzer knows about one privilege epoch of a program.
struct ScenarioInput {
  caps::CapSet permitted;               // live privilege set
  caps::Credentials creds;              // uids/gids in force
  std::vector<std::string> syscalls;    // syscall names the program uses
  /// Additional uid/gid values the search may try for wildcard arguments
  /// (beyond those implied by the credentials and the scenario objects).
  std::vector<int> extra_users;
  std::vector<int> extra_groups;
  /// Attacker strength (§X): Full is the paper's model; CfiOrdered and
  /// FixedArgs model programs hardened with control-flow / data-flow
  /// integrity defenses.
  rosa::AttackerModel attacker = rosa::AttackerModel::Full;
};

/// Build the ROSA query asking "starting from this epoch, can the attacker
/// reach the attack's compromised state?"
rosa::Query build_attack_query(AttackId attack, const ScenarioInput& input);

}  // namespace pa::attacks
