// Tests for the CSV / Markdown exporters plus full-pipeline integration for
// the two Table III programs not already covered end-to-end (thttpd, sshd).
#include <gtest/gtest.h>

#include <algorithm>

#include "privanalyzer/export.h"
#include "privanalyzer/render.h"
#include "support/str.h"

namespace pa::privanalyzer {
namespace {

using attacks::CellVerdict;
using caps::Capability;

ProgramAnalysis tiny_analysis() {
  ProgramAnalysis a;
  a.program = "demo";
  a.chrono.program = "demo";
  a.chrono.total_instructions = 100;
  chronopriv::EpochRow r1;
  r1.name = "demo_priv1";
  r1.key.permitted = {Capability::Setuid, Capability::Chown};
  r1.key.creds = caps::Credentials::of_user(1000, 1000);
  r1.instructions = 60;
  r1.fraction = 0.6;
  chronopriv::EpochRow r2;
  r2.name = "demo_priv2";
  r2.key.creds = caps::Credentials::of_user(0, 1000);
  r2.instructions = 40;
  r2.fraction = 0.4;
  a.chrono.rows = {r1, r2};
  attacks::EpochVerdicts v1;
  v1.epoch_name = r1.name;
  v1.verdicts = {CellVerdict::Vulnerable, CellVerdict::Safe,
                 CellVerdict::Safe, CellVerdict::Timeout};
  attacks::EpochVerdicts v2;
  v2.epoch_name = r2.name;
  v2.verdicts = {CellVerdict::Safe, CellVerdict::Safe, CellVerdict::Safe,
                 CellVerdict::Safe};
  a.verdicts = {v1, v2};
  return a;
}

TEST(ExportTest, EpochCsvShape) {
  ProgramAnalysis a = tiny_analysis();
  std::string csv = epochs_to_csv(a.chrono);
  auto lines = str::split(csv, '\n');
  ASSERT_EQ(lines.size(), 3u);  // header + 2 rows
  EXPECT_TRUE(str::starts_with(lines[0], "program,epoch,permitted"));
  // Capability lists are quoted (they contain commas).
  EXPECT_NE(lines[1].find("\"CapChown,CapSetuid\""), std::string::npos);
  EXPECT_NE(lines[1].find(",60,"), std::string::npos);
  EXPECT_NE(lines[2].find(",0,"), std::string::npos);  // euid 0
}

TEST(ExportTest, EfficacyCsvCells) {
  std::string csv = efficacy_to_csv({tiny_analysis()});
  auto lines = str::split(csv, '\n');
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(lines[1].ends_with("V,x,x,T"));
  EXPECT_TRUE(lines[2].ends_with("x,x,x,x"));
}

TEST(ExportTest, MarkdownTable) {
  std::string md = efficacy_to_markdown({tiny_analysis()});
  EXPECT_NE(md.find("| demo_priv1 |"), std::string::npos);
  EXPECT_NE(md.find("✓"), std::string::npos);
  EXPECT_NE(md.find("✗"), std::string::npos);
  EXPECT_NE(md.find("⏳"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(md.find("|---|"), std::string::npos);
}

TEST(ExportTest, FiltersCsvAndJsonShape) {
  ProgramAnalysis a = tiny_analysis();
  // No filter report -> both exports degrade to empty containers.
  EXPECT_EQ(str::split(filters_to_csv({a}), '\n').size(), 1u);  // header only
  EXPECT_EQ(filters_to_json({a}), "[\n]\n");

  a.filter_report.program = "demo";
  a.filter_report.program_syscalls = {"open", "kill", "close"};
  filters::EpochFilter e1;
  e1.epoch = "demo_priv1";
  e1.conservative = {"open", "kill", "close"};
  e1.refined = {"open", "kill", "close"};
  filters::EpochFilter e2;
  e2.epoch = "demo_priv2";
  e2.conservative = {"close"};
  e2.refined = {"close"};
  a.filter_report.epochs = {e1, e2};
  a.filtered_verdicts = a.verdicts;
  a.filtered_verdicts[0].verdicts[0] = CellVerdict::Safe;

  std::string csv = filters_to_csv({a});
  auto lines = str::split(csv, '\n');
  ASSERT_EQ(lines.size(), 3u);  // header + one row per epoch
  EXPECT_TRUE(str::starts_with(lines[0], "program,epoch,conservative_size"));
  // priv1: full surface (3 of 3, not reduced), baseline VxxT filtered xxxT.
  EXPECT_NE(lines[1].find("\"demo_priv1\",3,3,3,0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"VxxT\",\"xxxT\""), std::string::npos);
  // priv2: reduced to 1 of 3.
  EXPECT_NE(lines[2].find("\"demo_priv2\",1,1,3,1"), std::string::npos);

  std::string json = filters_to_json({a});
  EXPECT_NE(json.find("\"program\":\"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"conservative\":[\"close\"]"), std::string::npos);
}

TEST(ExportTest, CsvQuotesEmbeddedQuotes) {
  ProgramAnalysis a = tiny_analysis();
  a.chrono.rows[0].name = "odd\"name";
  std::string csv = epochs_to_csv(a.chrono);
  EXPECT_NE(csv.find("\"odd\"\"name\""), std::string::npos);
}

TEST(ExportTest, SearchStatsCsvAndTableShape) {
  PipelineOptions opts;
  opts.rosa_limits.max_states = 500'000;
  ProgramAnalysis a = analyze_program(programs::make_ping(), opts);
  ASSERT_FALSE(a.verdicts.empty());
  ASSERT_EQ(a.verdicts[0].results.size(), attacks::modeled_attacks().size());

  std::string csv = search_stats_to_csv({a});
  auto lines = str::split(csv, '\n');
  // header + one row per (epoch, attack) cell.
  ASSERT_EQ(lines.size(),
            1 + a.verdicts.size() * attacks::modeled_attacks().size());
  EXPECT_TRUE(str::starts_with(lines[0], "program,epoch,attack,verdict"));
  // The verdict-cache and fused-search counters ride along in the export.
  EXPECT_NE(lines[0].find("cache_hits,cache_misses,cache_joins,seconds"),
            std::string::npos);
  EXPECT_NE(lines[0].find("fused_group_size,fused_searches_saved,"
                          "fused_world_states"),
            std::string::npos);
  EXPECT_TRUE(str::starts_with(lines[1], "\"ping\",\"ping_priv1\","));
  // Each row carries the full column count (header commas == row commas).
  EXPECT_EQ(std::count(lines[1].begin(), lines[1].end(), ','),
            std::count(lines[0].begin(), lines[0].end(), ','));

  // The aggregate must mirror the per-cell legacy counters.
  rosa::SearchStats agg = a.search_stats();
  std::size_t states = 0;
  for (const auto& ev : a.verdicts)
    for (const auto& r : ev.results) states += r.states_explored();
  EXPECT_EQ(agg.states, states);
  EXPECT_GT(agg.states, 0u);

  // The pipeline runs with the cache on by default, so the matrix records
  // at least one miss (and the CSV mirrors the aggregate counters).
  EXPECT_GT(agg.cache_hits + agg.cache_misses, 0u);

  std::string table = render_search_stats({a});
  EXPECT_NE(table.find("ping"), std::string::npos);
  EXPECT_NE(table.find("Dedup"), std::string::npos);
  EXPECT_NE(table.find("PeakFront"), std::string::npos);
  EXPECT_NE(table.find("Hits"), std::string::npos);
  EXPECT_NE(table.find("Miss"), std::string::npos);
  EXPECT_NE(table.find("Joins"), std::string::npos);
}

// --- Full-pipeline integration for the remaining Table III programs -------

TEST(TableIIIRemaining, ThttpdVerdictsMatchPaper) {
  PipelineOptions opts;
  opts.rosa_limits.max_states = 500'000;
  ProgramAnalysis a = analyze_program(programs::make_thttpd(), opts);
  ASSERT_EQ(a.chrono.rows.size(), 5u);
  ASSERT_EQ(a.verdicts.size(), 5u);
  // priv1 (all 5 caps): everything feasible.
  for (CellVerdict v : a.verdicts[0].verdicts)
    EXPECT_EQ(v, CellVerdict::Vulnerable);
  // priv2 (Setgid,NetBind,SysChroot): V x V x — the kmem-group read plus
  // the privileged bind, nothing else.
  EXPECT_EQ(a.verdicts[1].verdicts[0], CellVerdict::Vulnerable);
  EXPECT_EQ(a.verdicts[1].verdicts[1], CellVerdict::Safe);
  EXPECT_EQ(a.verdicts[1].verdicts[2], CellVerdict::Vulnerable);
  EXPECT_EQ(a.verdicts[1].verdicts[3], CellVerdict::Safe);
  // priv5 (empty): all safe, >85% of execution.
  for (CellVerdict v : a.verdicts[4].verdicts)
    EXPECT_EQ(v, CellVerdict::Safe);
  EXPECT_GT(a.chrono.rows[4].fraction, 0.85);
  // Aggregate: safe for ~90% (paper: 90.16%).
  ExposureSummary s = exposure_of(a);
  EXPECT_NEAR(s.any_attack, 0.10, 0.03);
}

TEST(TableIIIRemaining, SshdRemainsVulnerableThroughout) {
  PipelineOptions opts;
  opts.rosa_limits.max_states = 500'000;
  ProgramAnalysis a = analyze_program(programs::make_sshd(), opts);
  ExposureSummary s = exposure_of(a);
  EXPECT_GT(s.devmem_read, 0.99);
  EXPECT_GT(s.devmem_write, 0.99);
  // Attack 3 (bind) only while CAP_NET_BIND_SERVICE is still permitted.
  double bind_fraction = a.vulnerable_fraction(2);
  EXPECT_GT(bind_fraction, 0.0);
  EXPECT_LT(bind_fraction, 0.01);
  // The big epoch (7 caps) is vulnerable to 1, 2, 4 but not 3.
  const auto& big = a.verdicts[1];
  EXPECT_EQ(big.verdicts[0], CellVerdict::Vulnerable);
  EXPECT_EQ(big.verdicts[1], CellVerdict::Vulnerable);
  EXPECT_EQ(big.verdicts[2], CellVerdict::Safe);
  EXPECT_EQ(big.verdicts[3], CellVerdict::Vulnerable);
}

TEST(TableIIIRemaining, RefactoredSshdExtensionIsClean) {
  PipelineOptions opts;
  opts.rosa_limits.max_states = 500'000;
  ProgramAnalysis a = analyze_program(programs::make_sshd_refactored(), opts);
  ExposureSummary s = exposure_of(a);
  EXPECT_LT(s.any_attack, 0.001);
}

}  // namespace
}  // namespace pa::privanalyzer
