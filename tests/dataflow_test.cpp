// Tests for the generic dataflow solver and the register-liveness analysis.
#include <gtest/gtest.h>

#include "dataflow/liveness.h"
#include "ir/builder.h"

namespace pa::dataflow {
namespace {

using ir::IRBuilder;
using B = IRBuilder;

TEST(PredecessorsTest, Computed) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("f", 1);
  b.condbr(B::r(0), "a", "c");
  b.at("a");
  b.br("c");
  b.at("c");
  b.ret(B::i(0));
  b.end_function();

  auto preds = predecessors(m.function("f"));
  EXPECT_TRUE(preds[0].empty());
  EXPECT_EQ(preds[1], (std::vector<int>{0}));
  EXPECT_EQ(preds[2], (std::vector<int>{0, 1}));
}

TEST(ExitBlockTest, Classification) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("f", 0);
  b.br("done");
  b.at("done");
  b.exit(B::i(0));
  b.end_function();
  const ir::Function& f = m.function("f");
  EXPECT_FALSE(is_exit_block(f.block(0)));
  EXPECT_TRUE(is_exit_block(f.block(1)));
}

TEST(RegLivenessTest, StraightLine) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("f", 1);
  int x = b.mov(B::i(1));
  int y = b.add(B::r(x), B::r(0));
  b.ret(B::r(y));
  b.end_function();

  auto facts = live_registers(m.function("f"));
  // Parameter %0 is live at entry; nothing is live at exit.
  EXPECT_TRUE(facts.in[0].contains(0));
  EXPECT_TRUE(facts.out[0].empty());
}

TEST(RegLivenessTest, LiveThroughBranch) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("f", 2);
  b.condbr(B::r(0), "use", "skip");
  b.at("use");
  b.ret(B::r(1));
  b.at("skip");
  b.ret(B::i(0));
  b.end_function();

  auto facts = live_registers(m.function("f"));
  EXPECT_TRUE(facts.in[0].contains(1));   // %1 live at entry (used in `use`)
  EXPECT_TRUE(facts.in[1].contains(1));
  EXPECT_FALSE(facts.in[2].contains(1));  // dead on the skip path
}

TEST(RegLivenessTest, LoopKeepsCounterLive) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("f", 0);
  int i = b.mov(B::i(0));
  b.br("head");
  b.at("head");
  int c = b.cmp_lt(B::r(i), B::i(10));
  b.condbr(B::r(c), "body", "done");
  b.at("body");
  int n = b.add(B::r(i), B::i(1));
  b.mov_to(i, B::r(n));
  b.br("head");
  b.at("done");
  b.ret(B::i(0));
  b.end_function();

  auto facts = live_registers(m.function("f"));
  int head = *m.function("f").block_index("head");
  int body = *m.function("f").block_index("body");
  EXPECT_TRUE(facts.in[static_cast<std::size_t>(head)].contains(i));
  EXPECT_TRUE(facts.in[static_cast<std::size_t>(body)].contains(i));
}

TEST(RegLivenessTest, DefKillsLiveness) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("f", 0);
  int x = b.mov(B::i(1));  // def of x — nothing above uses it
  b.ret(B::r(x));
  b.end_function();
  auto facts = live_registers(m.function("f"));
  EXPECT_FALSE(facts.in[0].contains(x));
}

TEST(ForwardSolverTest, MayBeRaisedAnalysis) {
  // Forward may-analysis: which capabilities may have been raised (and not
  // yet lowered) when a block is entered?
  ir::Module m("t");
  IRBuilder b(m);
  using caps::Capability;
  b.begin_function("f", 1);
  b.condbr(B::r(0), "raiser", "plain");   // 0
  b.at("raiser");
  b.priv_raise({Capability::Setuid});
  b.br("join");                            // 1
  b.at("plain");
  b.br("join");                            // 2
  b.at("join");
  b.syscall("setuid", {B::i(0)});
  b.priv_lower({Capability::Setuid});
  b.br("after");                           // 3
  b.at("after");
  b.ret(B::i(0));                          // 4
  b.end_function();

  using L = caps::CapSet;
  std::function<L(const ir::Instruction&, const L&)> transfer =
      [](const ir::Instruction& inst, const L& before) {
        if (inst.op == ir::Opcode::PrivRaise)
          return before | inst.operands[0].caps_value();
        if (inst.op == ir::Opcode::PrivLower)
          return before - inst.operands[0].caps_value();
        return before;
      };
  std::function<L(const L&, const L&)> join = [](const L& a, const L& c) {
    return a | c;
  };
  auto facts = dataflow::solve_forward<L>(m.function("f"), {}, {}, transfer,
                                          join);
  EXPECT_TRUE(facts.in[0].empty());
  EXPECT_TRUE(facts.out[1].contains(Capability::Setuid));
  EXPECT_TRUE(facts.out[2].empty());
  // join's entry may have it (from the raiser path)...
  EXPECT_TRUE(facts.in[3].contains(Capability::Setuid));
  // ...but the lower kills it before `after`.
  EXPECT_TRUE(facts.in[4].empty());
}

TEST(SolverConvergenceTest, IrreducibleCfgReachesFixpoint) {
  // Irreducible region: two loop headers (`h1`, `h2`) entered from the
  // outside on different paths and branching into each other — no single
  // header dominates. The worklist solver must still converge, and a
  // register used in both headers stays live around the whole region.
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("f", 2);
  int x = b.mov(B::i(40));
  b.condbr(B::r(0), "h1", "h2");
  b.at("h1");
  int c1 = b.cmp_lt(B::r(x), B::r(1));
  b.condbr(B::r(c1), "h2", "done");  // jumps into the other header
  b.at("h2");
  int c2 = b.cmp_lt(B::r(1), B::r(x));
  b.condbr(B::r(c2), "h1", "done");  // ...and back
  b.at("done");
  b.ret(B::r(x));
  b.end_function();

  auto facts = live_registers(m.function("f"));
  const ir::Function& f = m.function("f");
  int h1 = *f.block_index("h1");
  int h2 = *f.block_index("h2");
  // %x and the parameter %1 feed both headers, so both cycle paths keep
  // them live; the facts at the two headers must agree on that regardless
  // of which header the solver visited first.
  for (int blk : {h1, h2}) {
    EXPECT_TRUE(facts.in[static_cast<std::size_t>(blk)].contains(x));
    EXPECT_TRUE(facts.in[static_cast<std::size_t>(blk)].contains(1));
  }
  EXPECT_TRUE(facts.in[0].contains(1));
}

TEST(SolverConvergenceTest, NestedLoopsForwardAndBackward) {
  // Three nested loops with a priv_raise in the innermost body. The
  // forward may-be-raised analysis must propagate the capability out
  // through every loop exit, and the backward register liveness must keep
  // all three counters live through their loop headers.
  ir::Module m("t");
  IRBuilder b(m);
  using caps::Capability;
  b.begin_function("f", 0);
  int i = b.mov(B::i(0));
  b.br("ihead");
  b.at("ihead");
  int ci = b.cmp_lt(B::r(i), B::i(3));
  b.condbr(B::r(ci), "jinit", "done");
  b.at("jinit");
  int j = b.mov(B::i(0));
  b.br("jhead");
  b.at("jhead");
  int cj = b.cmp_lt(B::r(j), B::i(3));
  b.condbr(B::r(cj), "kinit", "iinc");
  b.at("kinit");
  int k = b.mov(B::i(0));
  b.br("khead");
  b.at("khead");
  int ck = b.cmp_lt(B::r(k), B::i(3));
  b.condbr(B::r(ck), "kbody", "jinc");
  b.at("kbody");
  b.priv_raise({Capability::Kill});
  b.syscall("kill", {B::i(1), B::i(9)});
  b.priv_lower({Capability::Kill});
  int kn = b.add(B::r(k), B::i(1));
  b.mov_to(k, B::r(kn));
  b.br("khead");
  b.at("jinc");
  int jn = b.add(B::r(j), B::i(1));
  b.mov_to(j, B::r(jn));
  b.br("jhead");
  b.at("iinc");
  int in = b.add(B::r(i), B::i(1));
  b.mov_to(i, B::r(in));
  b.br("ihead");
  b.at("done");
  b.ret(B::i(0));
  b.end_function();
  const ir::Function& f = m.function("f");

  // Backward: each counter is live at its own loop head.
  auto live = live_registers(f);
  EXPECT_TRUE(live.in[static_cast<std::size_t>(*f.block_index("ihead"))]
                  .contains(i));
  EXPECT_TRUE(live.in[static_cast<std::size_t>(*f.block_index("jhead"))]
                  .contains(j));
  EXPECT_TRUE(live.in[static_cast<std::size_t>(*f.block_index("khead"))]
                  .contains(k));

  // Forward: the raise inside kbody is lowered in the same block, so the
  // may-be-raised set is empty at every block entry — but only after the
  // solver has propagated around all three back edges.
  using L = caps::CapSet;
  std::function<L(const ir::Instruction&, const L&)> transfer =
      [](const ir::Instruction& inst, const L& before) {
        if (inst.op == ir::Opcode::PrivRaise)
          return before | inst.operands[0].caps_value();
        if (inst.op == ir::Opcode::PrivLower)
          return before - inst.operands[0].caps_value();
        return before;
      };
  std::function<L(const L&, const L&)> join = [](const L& a, const L& c) {
    return a | c;
  };
  auto raised = dataflow::solve_forward<L>(f, {}, {}, transfer, join);
  for (std::size_t blk = 0; blk < f.blocks().size(); ++blk)
    EXPECT_TRUE(raised.in[blk].empty()) << "block " << blk;

  // And with the lower deleted the capability escapes every loop level —
  // same CFG, dirtier program — exercising the growing direction too.
  ir::Module m2 = m;
  ir::Function& f2 = m2.function("f");
  auto& kbody = f2.block(*f2.block_index("kbody")).instructions;
  std::erase_if(kbody, [](const ir::Instruction& inst) {
    return inst.op == ir::Opcode::PrivLower;
  });
  auto leaked = dataflow::solve_forward<L>(f2, {}, {}, transfer, join);
  EXPECT_TRUE(leaked.in[static_cast<std::size_t>(*f2.block_index("done"))]
                  .contains(Capability::Kill));
  EXPECT_TRUE(leaked.in[static_cast<std::size_t>(*f2.block_index("ihead"))]
                  .contains(Capability::Kill));
}

TEST(InstructionFactsTest, PerInstructionBackward) {
  ir::Module m("t");
  IRBuilder b(m);
  b.begin_function("f", 0);
  int x = b.mov(B::i(1));
  int y = b.mov(B::i(2));
  b.add(B::r(x), B::r(y));
  b.ret(B::i(0));
  b.end_function();

  const ir::BasicBlock& bb = m.function("f").block(0);
  std::function<RegSet(const ir::Instruction&, const RegSet&)> transfer =
      [](const ir::Instruction& inst, const RegSet& after) {
        RegSet before = after;
        if (auto d = def_of(inst)) before.erase(*d);
        for (int u : uses_of(inst)) before.insert(u);
        return before;
      };
  auto before = instruction_facts_backward<RegSet>(bb, {}, transfer);
  ASSERT_EQ(before.size(), bb.instructions.size() + 1);
  EXPECT_TRUE(before[0].empty());           // nothing live before first def
  EXPECT_EQ(before[2], (RegSet{0, 1}));     // both live before the add
  EXPECT_TRUE(before[3].empty());           // nothing live after the add
}

}  // namespace
}  // namespace pa::dataflow
