file(REMOVE_RECURSE
  "CMakeFiles/os_misc_test.dir/os_misc_test.cpp.o"
  "CMakeFiles/os_misc_test.dir/os_misc_test.cpp.o.d"
  "os_misc_test"
  "os_misc_test.pdb"
  "os_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
