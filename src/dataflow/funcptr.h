// Flow-insensitive function-pointer propagation (Andersen-lite) over a
// PrivIR module: which functions can each register hold a FuncRef to?
//
// FuncRefs enter the dataflow at `funcaddr` instructions (and at literal
// @func operands of mov/call/ret, which the VM also evaluates to FuncRefs)
// and propagate through register copies, call arguments, and return values
// — including through indirect calls, whose own target sets grow as the
// analysis runs (the Andersen-style mutual fixpoint). Intraprocedural
// propagation reuses dataflow::solve_forward with a register→pointee-set
// environment as the lattice; an interprocedural worklist iterates the
// per-function solves until call-argument, return, and indirect-target
// sets stop growing.
//
// The exported per-site target sets are arity-filtered against
// Function::num_params — sound because the VM aborts any call whose
// argument count mismatches the callee (vm/interpreter.cpp push_frame), so
// a wrong-arity target can never be a feasible runtime behaviour.
//
// This is the refinement behind ir::IndirectCallPolicy::Refined: the paper
// attributes AutoPriv's weak sshd results to resolving every indirect call
// to EVERY address-taken function; these sets are always subsets of that
// (tests/funcptr_refinement_test.cpp proves the differential on every
// evaluation program).
#pragma once

#include <map>
#include <set>
#include <string>

#include "ir/module.h"

namespace pa::dataflow {

/// Result of the module-wide propagation.
struct FuncPtrResult {
  /// Arity-filtered `callind` targets, keyed (function name, callee
  /// register). Sites in the same function calling through the same
  /// register share an entry (their target sets are unioned).
  std::map<std::string, std::map<int, std::set<std::string>>> callind_targets;

  /// Functions that can reach a `syscall signal(signo, handler)` handler
  /// operand — literal @func operands and propagated register values alike,
  /// arity-filtered to unary functions (the VM invokes handlers with the
  /// signal number as their only argument). These are asynchronous-entry
  /// roots: reachability analyses must treat them like address-taken entry
  /// points or they drop handler-only syscalls.
  std::set<std::string> signal_handlers;

  /// Targets for a `callind` through `reg` in `fname` (empty set if the
  /// register never holds a FuncRef of matching arity — a lint finding).
  const std::set<std::string>& targets(const std::string& fname,
                                       int reg) const;
};

/// Run the propagation to fixpoint. Cost is tiny on the evaluation
/// programs (a handful of interprocedural rounds over module text).
FuncPtrResult analyze_func_ptrs(const ir::Module& module);

}  // namespace pa::dataflow
